"""Tests for the device registry and the cross-device DSE path.

Contracts under test:

* the registry resolves every built-in device and fails loudly (naming
  the known devices) on anything else;
* ``ResourcePool.utilization`` derives from the declared axes and
  **raises** on usage keys the pool does not account (regression: they
  used to read as silent 0.0 utilization);
* ``MerlinHLSTool`` keys its memo cache by device, so the same point
  synthesized against two pools cannot alias (regression);
* ``ParetoArchive.offer`` tombstones evicted keys and reports
  immediately-evicted candidates truthfully (regression);
* the reference device keeps every path **bit-identical** to the old
  device-less code: encoding, prediction scaling, Pareto keys;
* ``run_cross_device_dse`` yields non-empty, genuinely distinct fronts
  per device and a bit-reproducible device-annotated merged front;
* artifacts record the device set they were saved under and refuse to
  load against a different one.
"""

import json

import numpy as np
import pytest

from repro.designspace import build_design_space
from repro.dse import (
    CROSS_DEVICE_KEYS,
    DEFAULT_OBJECTIVE_KEYS,
    AnalyticPredictor,
    EvaluationPipeline,
    ModelDSE,
    cross_device_objectives,
    run_cross_device_dse,
)
from repro.dse.multiobjective import ParetoArchive
from repro.dse.search import DSECandidate
from repro.errors import ArtifactError, HLSError
from repro.explorer.database import Database, DesignRecord
from repro.graph import GraphEncoder, kernel_graph
from repro.graph.encoding import DEVICE_FEATURE_SLICE, device_features
from repro.hls import MerlinHLSTool
from repro.hls.cgra import CGRA4X4, CGRADevice
from repro.hls.device import (
    DEFAULT_DEVICE,
    U50,
    VCU1525,
    ZCU102,
    get_device,
    list_devices,
    register_device,
)
from repro.kernels import get_kernel
from repro.model.predictor import Prediction, scale_objectives_for_device
from repro.serve import save_artifact
from repro.serve.registry import device_set_fingerprint, load_artifact, read_manifest

from tests.test_pipeline import make_predictor, sample_points


@pytest.fixture(scope="module")
def predictor():
    return make_predictor()


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_builtin_devices_resolve(self):
        for name, device in [
            ("xcvu9p", VCU1525), ("xcu50", U50),
            ("xczu9eg", ZCU102), ("cgra4x4", CGRA4X4),
        ]:
            assert get_device(name) is device

    def test_names_are_sorted_and_complete(self):
        names = list_devices()
        assert names == sorted(names)
        assert {"xcvu9p", "xcu50", "xczu9eg", "cgra4x4"} <= set(names)

    def test_unknown_device_names_the_registry(self):
        with pytest.raises(HLSError, match=r"unknown device 'xc7z020'"):
            get_device("xc7z020")
        with pytest.raises(HLSError, match=r"known devices: \["):
            get_device("xc7z020")

    def test_duplicate_registration_rejected(self):
        clone = CGRADevice(name="cgra4x4", rows=8)
        with pytest.raises(HLSError, match="already registered"):
            register_device(clone)

    def test_default_device_is_the_papers_board(self):
        assert DEFAULT_DEVICE is VCU1525
        assert DEFAULT_DEVICE.kind == "fpga"


# ---------------------------------------------------------------------------
# satellite bugfix: utilization derives from declared axes


class TestUtilization:
    def test_normalises_by_declared_axes(self):
        util = VCU1525.utilization({"DSP": 684.0, "LUT": 118_224.0})
        assert util["DSP"] == pytest.approx(0.1)
        assert util["LUT"] == pytest.approx(0.1)
        assert util["BRAM"] == 0.0 and util["FF"] == 0.0
        assert tuple(util) == VCU1525.axes

    def test_unknown_usage_key_raises(self):
        # Regression: a typo'd axis used to read as 0.0 utilization and
        # mask an invalid design; now it names the offender and the axes.
        with pytest.raises(HLSError, match=r"\['URAM'\]"):
            VCU1525.utilization({"DSP": 1.0, "URAM": 5.0})

    def test_cgra_rejects_fpga_axes(self):
        with pytest.raises(HLSError, match=r"\['DSP'\]"):
            CGRA4X4.utilization({"DSP": 10.0})
        util = CGRA4X4.utilization({"PE": 8.0, "ISLOT": 64.0})
        assert util == {"PE": 0.5, "ISLOT": 0.25}

    def test_fit_axes_follow_device_kind(self):
        assert VCU1525.fit_axes == VCU1525.axes
        # PE occupancy is time-multiplexed compute, not a budget; only
        # the instruction memory bounds what the CGRA DSE may keep.
        assert CGRA4X4.fit_axes == ("ISLOT",)


# ---------------------------------------------------------------------------
# satellite bugfix: tool cache is device-keyed


class TestToolCacheByDevice:
    def test_device_swap_does_not_reuse_cache(self):
        # Regression: the memo key used to omit the device, so swapping
        # the pool on a live tool replayed the old device's report.
        spec = get_kernel("fir")
        point = {}
        tool = MerlinHLSTool(device=VCU1525)
        on_vu9p = tool.synthesize(spec, point)
        tool.device = ZCU102
        on_zu9eg = tool.synthesize(spec, point)
        assert on_zu9eg is not on_vu9p
        assert on_zu9eg.utilization != on_vu9p.utilization
        fresh = MerlinHLSTool(device=ZCU102).synthesize(spec, point)
        assert on_zu9eg.utilization == fresh.utilization
        assert on_zu9eg.latency == fresh.latency

    def test_same_device_still_caches(self):
        spec = get_kernel("fir")
        tool = MerlinHLSTool(device=ZCU102)
        first = tool.synthesize(spec, {})
        assert tool.synthesize(spec, {}) is first
        assert tool.invocations == 1


# ---------------------------------------------------------------------------
# CGRA target


class TestCGRA:
    def test_baseline_is_valid(self):
        result = MerlinHLSTool(device=CGRA4X4).baseline(get_kernel("fir"))
        assert result.valid
        assert set(result.utilization) == {"PE", "ISLOT"}
        assert result.device == "cgra4x4"

    def test_instruction_memory_overflow_invalidates(self):
        tiny = CGRADevice(name="cgra-tiny-test", instruction_slots=10)
        result = MerlinHLSTool(device=tiny).baseline(get_kernel("gesummv"))
        assert not result.valid
        assert result.utilization["ISLOT"] > 1.0

    def test_front_kept_over_cgra_axes(self):
        spec = get_kernel("fir")
        space = build_design_space(spec)
        dse = ModelDSE(
            AnalyticPredictor(CGRA4X4), spec, space,
            pipeline=None, use_pipeline=False, device=CGRA4X4,
        )
        result = dse.run(time_limit_seconds=30.0)
        assert result.device == "cgra4x4"
        assert result.top
        assert tuple(dse.pareto_keys) == ("latency", "PE", "ISLOT")


# ---------------------------------------------------------------------------
# prediction plumbing


class TestPredictionDevicePlumbing:
    def test_fits_axes_filter(self):
        p = Prediction(
            valid=True, valid_prob=0.9,
            objectives={"latency": 100.0, "PE": 1.0, "ISLOT": 0.1},
        )
        assert not p.fits(0.8)  # PE == 1.0 trips the unfiltered check
        assert p.fits(0.8, axes=("ISLOT",))
        assert not p.fits(0.8, axes=("PE",))

    def test_scaling_onto_smaller_pool(self):
        p = Prediction(
            valid=True, valid_prob=0.9,
            objectives={"latency": 50.0, "DSP": 0.1, "BRAM": 0.1,
                        "LUT": 0.1, "FF": 0.1},
        )
        (scaled,) = scale_objectives_for_device([p], ZCU102)
        assert scaled.objectives["latency"] == 50.0
        ratio = VCU1525.capacities()["DSP"] / ZCU102.capacities()["DSP"]
        assert scaled.objectives["DSP"] == pytest.approx(0.1 * ratio)
        assert scaled.objectives["DSP"] > 0.1  # smaller pool, higher util

    def test_reference_and_cgra_pass_through_unchanged(self):
        p = Prediction(
            valid=True, valid_prob=0.9,
            objectives={"latency": 50.0, "DSP": 0.1, "BRAM": 0.1,
                        "LUT": 0.1, "FF": 0.1},
        )
        assert scale_objectives_for_device([p], None) == [p]
        assert scale_objectives_for_device([p], VCU1525)[0] == p
        assert scale_objectives_for_device([p], CGRA4X4) == [p]

    def test_default_objective_keys_hoisted(self):
        assert DEFAULT_OBJECTIVE_KEYS == ("latency", "DSP", "BRAM", "LUT", "FF")
        assert VCU1525.pareto_keys == DEFAULT_OBJECTIVE_KEYS


# ---------------------------------------------------------------------------
# graph encoding conditioning


class TestDeviceEncoding:
    def test_reference_block_is_all_zero(self):
        assert not device_features(None).any()
        assert not device_features(VCU1525).any()

    def test_non_reference_blocks_are_nonzero_and_distinct(self):
        blocks = [device_features(d) for d in (U50, ZCU102, CGRA4X4)]
        for block in blocks:
            assert block.any()
        assert len({block.tobytes() for block in blocks}) == 3
        assert device_features(CGRA4X4)[0] == 1.0  # kind one-hot

    def test_default_encoding_bit_identical(self):
        graph = kernel_graph(get_kernel("fir"))
        encoder = GraphEncoder()
        plain = encoder.encode(graph)
        with_ref = encoder.encode(graph, device=VCU1525)
        assert plain.x_base.tobytes() == with_ref.x_base.tobytes()
        conditioned = encoder.encode(graph, device=U50)
        assert conditioned.x_base.tobytes() != plain.x_base.tobytes()
        # Only the device block differs; structural features untouched.
        mask = np.ones(plain.x_base.shape[1], dtype=bool)
        mask[DEVICE_FEATURE_SLICE] = False
        assert np.array_equal(conditioned.x_base[:, mask], plain.x_base[:, mask])


# ---------------------------------------------------------------------------
# satellite bugfix: ParetoArchive truthfulness


def _candidate(latency: float, dsp: float) -> DSECandidate:
    point = {"P": latency}  # distinct latency => distinct point key
    return DSECandidate(
        point=point,
        prediction=Prediction(
            valid=True, valid_prob=0.9,
            objectives={"latency": latency, "DSP": dsp},
        ),
    )


class TestParetoArchive:
    KEYS = ("latency", "DSP")

    def test_immediately_evicted_candidate_reports_false(self):
        # Regression: a candidate that capacity eviction removes in the
        # same offer() used to report True ("admitted") while never
        # appearing in the archive.
        archive = ParetoArchive(capacity=3, keys=self.KEYS)
        for latency, dsp in [(10, 8), (30, 6), (40, 1)]:
            assert archive.offer(_candidate(latency, dsp))
        # 31 is non-dominated but the most crowded member (nearest to
        # 30); eviction removes it immediately.
        assert archive.offer(_candidate(31, 5)) is False
        assert sorted(c.predicted_latency for c in archive.members) == [10, 30, 40]

    def test_evicted_key_is_tombstoned(self):
        # Regression: an evicted key could be re-offered and re-admitted,
        # making the frontier depend on arrival order.
        archive = ParetoArchive(capacity=3, keys=self.KEYS)
        for latency, dsp in [(10, 9), (20, 8), (21, 7)]:
            assert archive.offer(_candidate(latency, dsp))
        # 40 widens the frontier; the crowded 20/21 pair loses 20.
        assert archive.offer(_candidate(40, 1)) is True
        survivors = sorted(c.predicted_latency for c in archive.members)
        assert survivors == [10, 21, 40]
        before = list(archive.members)
        assert archive.offer(_candidate(20, 8)) is False
        assert archive.members == before

    def test_duplicate_point_rejected(self):
        archive = ParetoArchive(capacity=8, keys=self.KEYS)
        assert archive.offer(_candidate(10, 8))
        assert archive.offer(_candidate(10, 8)) is False
        assert len(archive.members) == 1


# ---------------------------------------------------------------------------
# cross-device DSE


class TestCrossDeviceDSE:
    DEVICES = ("xcvu9p", "xczu9eg", "cgra4x4")

    @pytest.fixture(scope="class")
    def result(self):
        spec = get_kernel("fir")
        space = build_design_space(spec)
        return run_cross_device_dse(
            spec, space, self.DEVICES, time_limit_seconds=60.0
        )

    def test_every_device_has_a_front(self, result):
        assert sorted(result.devices) == sorted(self.DEVICES)
        for name in self.DEVICES:
            front = result.per_device[name].pareto
            assert front, name
            assert result.per_device[name].device == name

    def test_fronts_are_genuinely_distinct(self, result):
        latencies = {
            name: tuple(
                sorted(c.prediction.objectives["latency"]
                       for c in result.per_device[name].pareto)
            )
            for name in self.DEVICES
        }
        assert len(set(latencies.values())) == len(self.DEVICES)

    def test_merged_front_is_device_annotated_subset(self, result):
        assert result.merged
        for entry in result.merged:
            assert entry.device in self.DEVICES
            assert entry.candidate in result.per_device[entry.device].pareto
        objectives = [cross_device_objectives(e) for e in result.merged]
        assert all(tuple(o) == CROSS_DEVICE_KEYS for o in objectives)

    def test_merged_front_is_bit_reproducible(self, result):
        spec = get_kernel("fir")
        space = build_design_space(spec)
        rerun = run_cross_device_dse(
            spec, space, self.DEVICES, time_limit_seconds=60.0
        )
        assert json.dumps(rerun.payload(), sort_keys=True) == json.dumps(
            result.payload(), sort_keys=True
        )

    def test_device_order_does_not_matter(self, result):
        spec = get_kernel("fir")
        space = build_design_space(spec)
        shuffled = run_cross_device_dse(
            spec, space, tuple(reversed(self.DEVICES)), time_limit_seconds=60.0
        )
        assert json.dumps(shuffled.payload(), sort_keys=True) == json.dumps(
            result.payload(), sort_keys=True
        )

    def test_surrogate_front_differs_per_fpga(self, predictor):
        spec = get_kernel("fir")
        space = build_design_space(spec)
        result = run_cross_device_dse(
            spec, space, ("xcvu9p", "xcu50"), predictor=predictor,
            time_limit_seconds=60.0,
        )
        ref = result.per_device["xcvu9p"]
        other = result.per_device["xcu50"]
        assert ref.top and other.top
        assert ref.device == "xcvu9p" and other.device == "xcu50"


# ---------------------------------------------------------------------------
# database provenance


class TestDatabaseDeviceProvenance:
    def test_records_are_keyed_by_device(self):
        db = Database()
        spec = get_kernel("fir")
        ref = DesignRecord.from_result(MerlinHLSTool(device=VCU1525).synthesize(spec, {}), {})
        assert ref.device == DEFAULT_DEVICE.name
        assert db.add(ref)
        zu = DesignRecord.from_result(
            MerlinHLSTool(device=ZCU102).synthesize(spec, {}), {}
        )
        assert zu.device == "xczu9eg"
        # Same kernel, same point, different device: a distinct record.
        assert db.add(zu)
        assert len(db) == 2
        assert db.get("fir", ref.point_key) is ref
        assert db.get("fir", zu.point_key, device="xczu9eg") is zu
        assert db.has("fir", {}, device="xczu9eg")

    def test_legacy_two_tuple_contains_means_reference_device(self):
        db = Database()
        spec = get_kernel("fir")
        record = DesignRecord.from_result(MerlinHLSTool().synthesize(spec, {}), {})
        db.add(record)
        assert ("fir", record.point_key) in db
        assert ("fir", DEFAULT_DEVICE.name, record.point_key) in db
        assert ("fir", "xczu9eg", record.point_key) not in db


# ---------------------------------------------------------------------------
# artifact device-set versioning


class TestArtifactDeviceSet:
    def test_manifest_records_device_set(self, predictor, tmp_path):
        path = tmp_path / "artifact"
        manifest = save_artifact(predictor, path)
        assert manifest["devices"]["names"] == list_devices()
        assert manifest["devices"]["sha256"] == device_set_fingerprint()
        load_artifact(path)  # same registry => loads fine

    def test_mismatched_device_set_is_rejected(self, predictor, tmp_path):
        path = tmp_path / "artifact"
        save_artifact(predictor, path)
        manifest = read_manifest(path)
        manifest["devices"]["sha256"] = "0" * 64
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="device set"):
            load_artifact(path)

    def test_verify_artifact_also_checks_device_set(self, predictor, tmp_path):
        # Offline verification must catch everything load would refuse.
        from repro.serve import verify_artifact

        path = tmp_path / "artifact"
        save_artifact(predictor, path)
        manifest = read_manifest(path)
        manifest["devices"]["sha256"] = "0" * 64
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="device set"):
            verify_artifact(path)

    def test_fingerprint_tracks_registry_contents(self):
        first = device_set_fingerprint()
        assert first == device_set_fingerprint()
        assert len(first) == 64


# ---------------------------------------------------------------------------
# pipeline conditioning (surrogate path)


class TestPipelineDeviceConditioning:
    def test_for_device_pipeline_scales_utilization(self, predictor):
        points = sample_points("fir", 3, seed=7)
        base = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        ref = base.predict_batch("fir", points)
        bound = predictor.for_device(ZCU102)
        conditioned = EvaluationPipeline(bound, batch_size=4, engine="compiled")
        got = conditioned.predict_batch("fir", points)
        assert len(got) == len(ref)
        assert bound.device is ZCU102
        # Conditioning (device feature block + capacity rescaling) must
        # actually reach the forward pass: same points, different answers.
        assert got != ref

    def test_default_pipeline_unchanged_by_device_plumbing(self, predictor):
        points = sample_points("fir", 3, seed=7)
        expected = [predictor.predict("fir", p) for p in points]
        pipeline = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        assert pipeline.predict_batch("fir", points) == expected
