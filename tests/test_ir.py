"""Tests for IR construction, lowering, and verification."""

import pytest

from repro.errors import IRError, SemanticError
from repro.frontend.parser import parse_source
from repro.frontend.semantic import analyze
from repro.ir import (
    F64,
    I32,
    IRBuilder,
    Module,
    PointerType,
    lower_unit,
    print_module,
)


def lower(src):
    return lower_unit(parse_source(src))


class TestBuilder:
    def test_alloca_load_store(self):
        module = Module("m")
        fn = module.add_function("f")
        builder = IRBuilder(fn)
        builder.set_insert_point(builder.new_block("entry"))
        slot = builder.alloca(I32, "x")
        assert isinstance(slot.type, PointerType)
        builder.store(builder.const_int(3), slot)
        loaded = builder.load(slot)
        assert loaded.type == I32
        builder.ret()
        fn.verify()

    def test_type_unification_int_float(self):
        module = Module("m")
        fn = module.add_function("f")
        builder = IRBuilder(fn)
        builder.set_insert_point(builder.new_block("entry"))
        result = builder.binary("+", builder.const_int(1), builder.const_float(2.0))
        assert result.type == F64
        assert result.opcode == "fadd"
        builder.ret()

    def test_compare_produces_icmp(self):
        module = Module("m")
        fn = module.add_function("f")
        builder = IRBuilder(fn)
        builder.set_insert_point(builder.new_block("entry"))
        cmp = builder.compare("<", builder.const_int(1), builder.const_int(2))
        assert cmp.opcode == "icmp"
        assert cmp.attrs["predicate"] == "slt"
        builder.ret()

    def test_terminator_required(self):
        module = Module("m")
        fn = module.add_function("f")
        fn.add_block("entry")
        with pytest.raises(IRError):
            fn.verify()

    def test_double_terminator_rejected(self):
        module = Module("m")
        fn = module.add_function("f")
        builder = IRBuilder(fn)
        builder.set_insert_point(builder.new_block("entry"))
        builder.ret()
        with pytest.raises(IRError):
            builder.ret()


class TestLowering:
    def test_simple_loop(self):
        module = lower(
            "void f(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = i; } }"
        )
        fn = module.top
        names = [b.name for b in fn.blocks]
        assert any("for.cond" in n for n in names)
        assert any("for.body" in n for n in names)
        assert "L0" in fn.loop_icmp

    def test_loop_backedge_marked(self):
        module = lower(
            "void f(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = i; } }"
        )
        backedges = [
            i for i in module.top.instructions()
            if i.opcode == "br" and i.attrs.get("backedge")
        ]
        assert len(backedges) == 1
        assert backedges[0].attrs["loop"] == "L0"

    def test_if_else_blocks(self):
        module = lower(
            "void f(int a[4]) { if (a[0] > 1) { a[1] = 2; } else { a[1] = 3; } }"
        )
        names = [b.name for b in module.top.blocks]
        assert any("if.then" in n for n in names)
        assert any("if.else" in n for n in names)

    def test_float_expression_types(self):
        module = lower("void f(double a[4]) { a[0] = a[1] * 2.0 + a[2]; }")
        opcodes = [i.opcode for i in module.top.instructions()]
        assert "fmul" in opcodes
        assert "fadd" in opcodes

    def test_int_to_float_cast_inserted(self):
        module = lower("void f(double a[4]) { a[0] = a[1] * 2; }")
        opcodes = [i.opcode for i in module.top.instructions()]
        assert "sitofp" in opcodes

    def test_gep_records_array(self):
        module = lower("void f(int a[4][4]) { a[1][2] = 5; }")
        geps = [i for i in module.top.instructions() if i.opcode == "getelementptr"]
        assert geps and geps[0].attrs["array"] == "a"
        assert len(geps[0].operands) == 3  # base + two indices

    def test_call_lowering(self):
        module = lower(
            "int add1(int v) { return v + 1; }\n"
            "void f(int a[4]) { a[0] = add1(a[1]); }"
        )
        calls = [i for i in module.top.instructions() if i.opcode == "call"]
        assert calls and calls[0].attrs["callee"] == "add1"

    def test_module_verifies(self):
        module = lower(
            "void f(int a[8]) {\n"
            "  for (int i = 0; i < 8; i++) {\n"
            "    if (a[i] > 0) { a[i] = 0; } \n"
            "  }\n"
            "}"
        )
        module.verify()

    def test_printer_output(self):
        module = lower("void f(int a[4]) { a[0] = 1; }")
        text = print_module(module)
        assert "define void @f" in text
        assert "store" in text

    def test_undeclared_identifier_raises(self):
        with pytest.raises(SemanticError):
            lower("void f() { x = 3; }")

    def test_whole_array_assignment_rejected(self):
        with pytest.raises(SemanticError):
            lower("void f(int a[4], int b[4]) { a = b; }")

    def test_over_subscription_rejected(self):
        with pytest.raises(SemanticError):
            lower("void f(int a[4]) { a[0][1] = 2; }")


class TestSemanticAnalysis:
    def test_symbol_tables(self):
        unit = parse_source("void f(int a[4]) { int x = 1; }")
        tables = analyze(unit)
        assert set(tables["f"].symbols) == {"a", "x"}
        assert tables["f"].symbols["a"].is_param

    def test_unknown_call_rejected(self):
        unit = parse_source("void f() { undefined_fn(); }")
        with pytest.raises(SemanticError):
            analyze(unit)

    def test_intrinsics_allowed(self):
        unit = parse_source("void f(double a[4]) { a[0] = sqrt(a[1]); }")
        analyze(unit)
