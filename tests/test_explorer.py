"""Tests for the database, evaluator, and the three explorers."""

import pytest

from repro.designspace import build_design_space
from repro.errors import DatabaseError
from repro.explorer import (
    BottleneckExplorer,
    Database,
    DesignRecord,
    Evaluator,
    HybridExplorer,
    RandomExplorer,
    deserialize_point,
    generate_database,
    serialize_point,
)
from repro.frontend.pragmas import PipelineOption
from repro.hls import MerlinHLSTool
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def atax():
    return get_kernel("atax")


@pytest.fixture(scope="module")
def atax_space(atax):
    return build_design_space(atax)


@pytest.fixture()
def evaluator():
    return Evaluator(MerlinHLSTool(), Database(), parallelism=8)


class TestSerialization:
    def test_point_roundtrip(self):
        point = {"__PIPE__L0": PipelineOption.FINE, "__PARA__L0": 8}
        assert deserialize_point(serialize_point(point)) == point

    def test_database_save_load(self, tmp_path, atax, atax_space, evaluator):
        explorer = RandomExplorer(atax, atax_space, evaluator)
        explorer.run(max_evals=10)
        db = evaluator.database
        path = tmp_path / "db.json"
        db.save(path)
        loaded = Database.load(path)
        assert len(loaded) == len(db)
        first = next(iter(loaded))
        original = db.get(first.kernel, first.point_key)
        assert original.latency == first.latency
        assert original.utilization == first.utilization


class TestDatabase:
    def test_add_deduplicates(self, atax, atax_space):
        db = Database()
        tool = MerlinHLSTool()
        point = atax_space.default_point()
        result = tool.synthesize(atax, point)
        record = DesignRecord.from_result(result, point, source="x")
        assert db.add(record)
        assert not db.add(record)
        assert len(db) == 1

    def test_get_missing_raises(self):
        with pytest.raises(DatabaseError):
            Database().get("atax", "nope")

    def test_best_valid_respects_fit(self, atax, atax_space, evaluator):
        RandomExplorer(atax, atax_space, evaluator, seed=3).run(max_evals=40)
        db = evaluator.database
        best = db.best_valid("atax", fit_threshold=0.8)
        if best is not None:
            assert best.valid
            assert all(u < 0.8 for u in best.utilization.values())
            for record in db.valid_records("atax"):
                if all(u < 0.8 for u in record.utilization.values()):
                    assert best.latency <= record.latency

    def test_stats_by_round(self, atax, atax_space):
        db = Database()
        tool = MerlinHLSTool()
        evaluator = Evaluator(tool, db)
        evaluator.evaluate(atax, atax_space.default_point(), round=0)
        point2 = dict(atax_space.default_point())
        knob = atax_space.knobs[0]
        point2[knob.name] = knob.candidates[-1]
        evaluator.evaluate(atax, point2, round=2)
        assert db.stats(max_round=0)["total"] == 1
        assert db.stats()["total"] == 2

    def test_merge(self, atax, atax_space):
        tool = MerlinHLSTool()
        db1, db2 = Database(), Database()
        Evaluator(tool, db1).evaluate(atax, atax_space.default_point())
        added = db2.merge(db1)
        assert added == 1

    def test_save_is_atomic_under_crash(self, tmp_path, atax, atax_space, monkeypatch):
        """A crash mid-save never clobbers the existing database file."""
        import os

        db1 = Database()
        Evaluator(MerlinHLSTool(), db1).evaluate(atax, atax_space.default_point())
        path = tmp_path / "db.json"
        db1.save(path)
        before = path.read_bytes()

        db2 = Database()
        evaluator = Evaluator(MerlinHLSTool(), db2)
        evaluator.evaluate(atax, atax_space.default_point())
        point2 = dict(atax_space.default_point())
        knob = atax_space.knobs[0]
        point2[knob.name] = knob.candidates[-1]
        evaluator.evaluate(atax, point2)

        real_replace = os.replace

        def crash(src, dst):  # the process "dies" between write and rename
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            db2.save(path)
        monkeypatch.setattr(os, "replace", real_replace)

        # The original file is byte-for-byte untouched and still loads,
        # and the temp file did not leak.
        assert path.read_bytes() == before
        assert len(Database.load(path)) == len(db1)
        assert list(tmp_path.iterdir()) == [path]

        # The interrupted save can simply be retried.
        db2.save(path)
        assert len(Database.load(path)) == len(db2)
        assert db2.merge(db1) == 0


class TestEvaluator:
    def test_commits_to_database(self, atax, atax_space, evaluator):
        evaluator.evaluate(atax, atax_space.default_point())
        assert len(evaluator.database) == 1

    def test_parallel_elapsed_less_than_total(self, atax, atax_space, evaluator):
        for point in atax_space.sample(__import__("random").Random(0), 16):
            evaluator.evaluate(atax, point)
        assert evaluator.elapsed_seconds < evaluator.synth_seconds_total
        assert evaluator.elapsed_seconds > 0


class TestExplorers:
    def test_bottleneck_improves_over_default(self, atax, atax_space, evaluator):
        tool = evaluator.tool
        default_latency = tool.synthesize(atax, atax_space.default_point()).latency
        explorer = BottleneckExplorer(atax, atax_space, evaluator)
        result = explorer.run(max_evals=40)
        assert result.best_latency is not None
        assert result.best_latency < default_latency

    def test_bottleneck_trajectory_monotone(self, atax, atax_space, evaluator):
        result = BottleneckExplorer(atax, atax_space, evaluator).run(max_evals=40)
        latencies = [lat for _, lat in result.trajectory]
        # After the first committed improvement, quality never regresses.
        assert all(b <= a for a, b in zip(latencies[1:], latencies[2:]))

    def test_budget_respected(self, atax, atax_space, evaluator):
        result = BottleneckExplorer(atax, atax_space, evaluator).run(max_evals=15)
        assert result.evaluations <= 15

    def test_time_budget_respected(self, atax, atax_space, evaluator):
        explorer = BottleneckExplorer(atax, atax_space, evaluator)
        result = explorer.run(max_evals=10_000, max_hours=0.5)
        # One synthesis exceeds the budget, so it stops almost at once.
        assert result.evaluations < 30

    def test_hybrid_explores_neighbors(self, atax, atax_space, evaluator):
        explorer = HybridExplorer(atax, atax_space, evaluator, neighbor_budget=4)
        result = explorer.run(max_evals=60)
        sources = {r.source for r in evaluator.database}
        assert sources == {"hybrid"}
        assert result.evaluations > 5

    def test_random_seeded_deterministic(self, atax, atax_space):
        tool = MerlinHLSTool()
        keys = []
        for _ in range(2):
            evaluator = Evaluator(tool, Database())
            RandomExplorer(atax, atax_space, evaluator, seed=7).run(max_evals=10)
            keys.append(sorted(r.point_key for r in evaluator.database))
        assert keys[0] == keys[1]


class TestGenerateDatabase:
    def test_small_generation(self):
        db = generate_database(kernels=["atax", "spmv-crs"], scale=0.05, seed=1)
        assert db.stats()["total"] > 10
        assert set(db.kernels()) == {"atax", "spmv-crs"}
        sources = {r.source for r in db}
        assert "random" in sources


class TestConflictSemantics:
    """`add`/`merge` when the same point arrives from different rounds."""

    def _record(self, atax, atax_space, round=0, latency=None, source=""):
        tool = MerlinHLSTool()
        point = atax_space.default_point()
        result = tool.synthesize(atax, point)
        record = DesignRecord.from_result(result, point, source=source, round=round)
        if latency is not None:
            record.latency = latency
        return record

    def test_newer_round_wins(self, atax, atax_space):
        db = Database()
        old = self._record(atax, atax_space, round=0, latency=100, source="seed")
        new = self._record(atax, atax_space, round=2, latency=90, source="loop:r2")
        assert db.add(old)
        assert not db.add(new)  # not a NEW point…
        stored = db.get(atax.name, new.point_key)
        assert stored.latency == 90  # …but the newer label replaced the old
        assert stored.source == "loop:r2"
        assert db.overwrites == 1
        assert len(db) == 1

    def test_same_round_first_write_wins(self, atax, atax_space):
        db = Database()
        first = self._record(atax, atax_space, round=1, latency=100)
        second = self._record(atax, atax_space, round=1, latency=90)
        db.add(first)
        assert not db.add(second)
        assert db.get(atax.name, first.point_key).latency == 100
        assert db.overwrites == 0

    def test_older_round_does_not_clobber(self, atax, atax_space):
        db = Database()
        new = self._record(atax, atax_space, round=3, latency=90)
        old = self._record(atax, atax_space, round=1, latency=100)
        db.add(new)
        assert not db.add(old)
        assert db.get(atax.name, new.point_key).latency == 90
        assert db.overwrites == 0

    def test_merge_counts_overwrites_not_added(self, atax, atax_space):
        db = Database()
        db.add(self._record(atax, atax_space, round=0, latency=100))
        other = Database()
        other.add(self._record(atax, atax_space, round=2, latency=80))
        added = db.merge(other)
        assert added == 0
        assert db.overwrites == 1
        assert db.get(atax.name, next(iter(other)).point_key).latency == 80

    def test_created_provenance_roundtrips(self, tmp_path, atax, atax_space):
        db = Database()
        record = self._record(atax, atax_space, round=2, source="loop:r2")
        record.created = 1700000000.25
        db.add(record)
        path = tmp_path / "db.json"
        db.save(path)
        loaded = Database.load(path)
        stored = loaded.get(atax.name, record.point_key)
        assert stored.created == 1700000000.25
        assert stored.round == 2
        assert stored.source == "loop:r2"

    def test_load_accepts_records_without_created(self, tmp_path, atax, atax_space):
        """Databases saved before the `created` field still load."""
        import json

        db = Database()
        db.add(self._record(atax, atax_space))
        path = tmp_path / "db.json"
        db.save(path)
        raw = json.loads(path.read_text())
        for entry in raw:
            entry.pop("created")
        path.write_text(json.dumps(raw))
        loaded = Database.load(path)
        assert next(iter(loaded)).created == 0.0
