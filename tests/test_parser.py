"""Tests for the C-subset parser and pragma attachment."""

import pytest

from repro.errors import ParseError, PragmaError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_source
from repro.frontend.pragmas import (
    PipelineOption,
    PragmaKind,
    annotate_candidates,
    collect_pragmas,
    parse_pragma,
)


def parse_fn(body, params="int a[8]"):
    unit = parse_source(f"void f({params}) {{ {body} }}")
    return unit.function("f")


class TestDeclarationsAndTypes:
    def test_function_signature(self):
        unit = parse_source("void foo(int a[4], double b, float c[2][3]) {}")
        fn = unit.function("foo")
        assert [p.name for p in fn.params] == ["a", "b", "c"]
        assert fn.params[0].ctype.dims == (4,)
        assert fn.params[2].ctype.dims == (2, 3)
        assert fn.params[1].ctype.base == "double"

    def test_local_declarations(self):
        fn = parse_fn("int x = 3; double y; int buf[16];")
        decls = [s for s in fn.body.stmts if isinstance(s, ast.DeclStmt)]
        assert len(decls) == 3
        assert decls[0].init is not None
        assert decls[2].ctype.dims == (16,)

    def test_multi_declarator(self):
        fn = parse_fn("int i, j = 3, buf[4];")
        block = fn.body.stmts[0]
        assert isinstance(block, ast.Block)
        decls = [s for s in block.stmts if isinstance(s, ast.DeclStmt)]
        assert [d.name for d in decls] == ["i", "j", "buf"]
        assert decls[1].init is not None
        assert decls[2].ctype.dims == (4,)

    def test_multi_declarator_in_for_init(self):
        fn = parse_fn("for (int k = 0, n = 8; k < n; k++) { a[k % 8] = 0; }")
        loop = fn.body.stmts[0]
        assert isinstance(loop, ast.ForStmt)
        assert isinstance(loop.init, ast.Block)

    def test_top_function_is_last(self):
        unit = parse_source("void a() {}\nvoid b() {}")
        assert unit.top.name == "b"

    def test_pointer_param_becomes_unsized_array(self):
        unit = parse_source("void f(int *p) {}")
        assert unit.top.params[0].ctype.dims == (0,)


class TestStatements:
    def test_for_loop_structure(self):
        fn = parse_fn("for (int i = 0; i < 8; i++) { a[i] = i; }")
        loop = fn.body.stmts[0]
        assert isinstance(loop, ast.ForStmt)
        assert loop.label == "L0"
        assert isinstance(loop.init, ast.DeclStmt)
        assert isinstance(loop.cond, ast.BinaryOp)

    def test_nested_loop_labels_preorder(self):
        fn = parse_fn(
            "for (int i = 0; i < 4; i++) { for (int j = 0; j < 4; j++) { a[j] = i; } }"
            "for (int k = 0; k < 4; k++) { a[k] = k; }"
        )
        loops = ast.collect_loops(fn.body)
        assert [l.label for l in loops] == ["L0", "L1", "L2"]

    def test_if_else(self):
        fn = parse_fn("if (a[0] > 2) { a[1] = 1; } else { a[1] = 2; }")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.otherwise is not None

    def test_compound_assignment(self):
        fn = parse_fn("a[0] += 5;")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.op == "+"

    def test_postfix_increment_desugars(self):
        fn = parse_fn("int i = 0; i++;")
        stmt = fn.body.stmts[1]
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.op == "+"

    def test_braceless_loop_body_wrapped(self):
        fn = parse_fn("for (int i = 0; i < 4; i++) a[i] = 0;")
        loop = fn.body.stmts[0]
        assert isinstance(loop.body, ast.Block)

    def test_return_statement(self):
        unit = parse_source("int f() { return 3; }")
        stmt = unit.top.body.stmts[0]
        assert isinstance(stmt, ast.ReturnStmt)

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_source("void f() { int x = 3 }")


class TestExpressions:
    def test_precedence(self):
        fn = parse_fn("int x = 1 + 2 * 3;")
        init = fn.body.stmts[0].init
        assert init.op == "+"
        assert init.rhs.op == "*"

    def test_parentheses(self):
        fn = parse_fn("int x = (1 + 2) * 3;")
        init = fn.body.stmts[0].init
        assert init.op == "*"

    def test_multi_dim_subscript(self):
        fn = parse_fn("b[1][2] = 3;", params="int b[4][4]")
        target = fn.body.stmts[0].target
        assert isinstance(target, ast.ArrayRef)
        assert len(target.indices) == 2

    def test_ternary(self):
        fn = parse_fn("int x = a[0] > 0 ? 1 : 2;")
        assert isinstance(fn.body.stmts[0].init, ast.TernaryOp)

    def test_unary_minus(self):
        fn = parse_fn("int x = -3;")
        assert isinstance(fn.body.stmts[0].init, ast.UnaryOp)

    def test_call_expression(self):
        unit = parse_source("int g(int v) { return v; }\nvoid f() { int x = g(2); }")
        init = unit.top.body.stmts[0].init
        assert isinstance(init, ast.Call)
        assert init.name == "g"

    def test_cast(self):
        fn = parse_fn("double y = (double) a[0];")
        assert isinstance(fn.body.stmts[0].init, ast.Cast)

    def test_logical_operators(self):
        fn = parse_fn("if (a[0] > 0 && a[1] < 3) { a[2] = 1; }")
        cond = fn.body.stmts[0].cond
        assert cond.op == "&&"


class TestPragmaParsing:
    def test_pipeline_placeholder(self):
        pragma = parse_pragma("ACCEL pipeline auto{__PIPE__L0}")
        assert pragma.kind is PragmaKind.PIPELINE
        assert pragma.placeholder == "__PIPE__L0"

    def test_parallel_fixed(self):
        pragma = parse_pragma("ACCEL parallel factor=4")
        assert pragma.kind is PragmaKind.PARALLEL
        assert pragma.fixed_value == 4

    def test_tile_placeholder(self):
        pragma = parse_pragma("ACCEL tile factor=auto{__TILE__L2}")
        assert pragma.kind is PragmaKind.TILE

    def test_pipeline_fixed_option(self):
        pragma = parse_pragma("ACCEL pipeline fg")
        assert pragma.fixed_value is PipelineOption.FINE

    def test_non_accel_ignored(self):
        assert parse_pragma("HLS unroll factor=2") is None

    def test_malformed_raises(self):
        with pytest.raises(PragmaError):
            parse_pragma("ACCEL parallel")

    def test_attach_to_loop(self):
        unit = parse_source(
            "void f(int a[8]) {\n"
            "#pragma ACCEL pipeline auto{P1}\n"
            "for (int i = 0; i < 8; i++) { a[i] = 0; }\n"
            "}"
        )
        pragmas = collect_pragmas(unit)
        assert len(pragmas) == 1
        assert pragmas[0].loop_label == "L0"
        assert pragmas[0].function == "f"

    def test_duplicate_placeholder_raises(self):
        unit = parse_source(
            "void f(int a[8]) {\n"
            "#pragma ACCEL pipeline auto{P}\n"
            "for (int i = 0; i < 8; i++) { a[i] = 0; }\n"
            "#pragma ACCEL pipeline auto{P}\n"
            "for (int j = 0; j < 8; j++) { a[j] = 0; }\n"
            "}"
        )
        with pytest.raises(PragmaError):
            collect_pragmas(unit)

    def test_annotate_candidates(self):
        unit = parse_source(
            "void f(int a[8]) { for (int i = 0; i < 8; i++)"
            " { for (int j = 0; j < 8; j++) { a[j] = i; } } }"
        )
        pragmas = annotate_candidates(unit)
        # Outer loop: tile+pipeline+parallel; inner: pipeline+parallel.
        kinds = sorted(p.kind.keyword for p in pragmas)
        assert kinds == ["parallel", "parallel", "pipeline", "pipeline", "tile"]

    def test_render_round_trip(self):
        pragma = parse_pragma("ACCEL parallel factor=auto{X}")
        assert pragma.render(8) == "ACCEL parallel factor=8"
        assert pragma.render() == "ACCEL parallel factor=auto{X}"
