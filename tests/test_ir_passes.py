"""Tests for the IR optimization passes (constant folding + DCE)."""


from repro.frontend.parser import parse_source
from repro.ir import lower_unit, optimize_module
from repro.ir.passes import eliminate_dead_code
from repro.ir.values import Constant


def lower(src):
    return lower_unit(parse_source(src))


def opcodes(fn):
    return [i.opcode for i in fn.instructions()]


class TestConstantFolding:
    def test_folds_integer_arithmetic(self):
        module = lower("void f(int a[4]) { a[0] = 2 * 3 + 4; }")
        optimize_module(module)
        ops = opcodes(module.top)
        assert "mul" not in ops
        assert "add" not in ops
        stores = [i for i in module.top.instructions() if i.opcode == "store"]
        constant_store = [
            i for i in stores if isinstance(i.operands[0], Constant)
        ]
        assert any(i.operands[0].value == 10 for i in constant_store)

    def test_folds_float_arithmetic(self):
        module = lower("void f(double a[4]) { a[0] = 1.5 * 2.0; }")
        optimize_module(module)
        assert "fmul" not in opcodes(module.top)

    def test_division_by_zero_not_folded(self):
        module = lower("void f(int a[4]) { a[0] = 7 / 0; }")
        stats = optimize_module(module)
        assert "sdiv" in opcodes(module.top)

    def test_folds_comparison(self):
        module = lower("void f(int a[4]) { if (2 < 3) { a[0] = 1; } }")
        optimize_module(module)
        # The icmp folds away; the conditional branch remains (we do not
        # fold control flow).
        icmps = [
            i for i in module.top.instructions()
            if i.opcode == "icmp" and all(isinstance(o, Constant) for o in i.operands)
        ]
        assert not icmps

    def test_preserves_loop_compares(self):
        module = lower(
            "void f(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = 0; } }"
        )
        optimize_module(module)
        assert "icmp" in opcodes(module.top)  # i is not constant
        module.verify()

    def test_width_wrapping(self):
        # Folding respects the 32-bit result type.
        module = lower("void f(int a[4]) { a[0] = 2147483647 + 1; }")
        optimize_module(module)
        stores = [i for i in module.top.instructions() if i.opcode == "store"]
        value = stores[0].operands[0]
        assert isinstance(value, Constant)
        assert value.value == -2147483648


class TestDeadCodeElimination:
    def test_removes_unused_pure_instruction(self):
        module = lower("void f(int a[4]) { int unused = a[0] + 1; a[1] = 2; }")
        before = module.top.num_instructions()
        # The store to `unused`'s slot keeps the add alive; drop the
        # store manually to create dead code, as an optimizer would
        # after mem2reg.
        for block in module.top.blocks:
            for inst in list(block.instructions):
                if inst.opcode == "store" and inst.attrs == {}:
                    target = inst.operands[1]
                    if getattr(target, "attrs", {}).get("var") == "unused":
                        block.instructions.remove(inst)
                        for op in inst.operands:
                            op.uses = [u for u in op.uses if u is not inst]
        stats = eliminate_dead_code(module.top)
        assert module.top.num_instructions() <= before
        module.verify()

    def test_keeps_stores_and_calls(self):
        module = lower(
            "int g(int v) { return v; }\n"
            "void f(int a[4]) { a[0] = 1; g(2); }"
        )
        eliminate_dead_code(module.top)
        ops = opcodes(module.top)
        assert "store" in ops
        assert "call" in ops

    def test_fixpoint_chains(self):
        # a dead chain x = 1+2; y = x*3 (unused) vanishes entirely after
        # folding + DCE iterations.
        module = lower("void f(int a[4]) { a[0] = (1 + 2) * 3; }")
        stats = optimize_module(module)
        assert stats.folded >= 2
        module.verify()


class TestWholePipeline:
    def test_all_kernels_optimize_and_verify(self):
        from repro.kernels import KERNELS

        for name, spec in KERNELS.items():
            module = lower(spec.source)
            stats = optimize_module(module)
            module.verify()

    def test_optimization_shrinks_or_keeps(self):
        from repro.kernels import get_kernel

        spec = get_kernel("nw")
        module = lower(spec.source)
        before = module.num_instructions()
        optimize_module(module)
        assert module.num_instructions() <= before
