"""Tests for ``repro.obs``: tracing, metrics, export, and integration.

Three contracts:

- **Correctness**: nearest-rank quantiles (the old serving helper was
  upper-biased), span nesting/parentage, schema validation of exported
  traces, monotonic-only duration math.
- **Cost**: with tracing disabled the hot-path instrumentation must add
  zero trace entries and near-zero time (a shared no-op span, no
  allocation).
- **Integration**: the pipeline, parallel DSE, and serving layer all
  feed the same process-wide registry and tracer.
"""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    REGISTRY,
    TRACER,
    Counter,
    Histogram,
    MetricsRegistry,
    TraceValidationError,
    counter,
    histogram,
    metrics_payload,
    metrics_text,
    nearest_rank_quantile,
    span,
    trace_payload,
    validate_trace,
    write_trace,
)
from repro.serve.metrics import ServeMetrics


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Tracing and metrics are process-global; leave them as found."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# quantiles


class TestNearestRankQuantile:
    def test_median_of_four_is_two(self):
        # The bug this replaces: int(0.5 * 4) == 2 indexed element 3.
        assert nearest_rank_quantile([1, 2, 3, 4], 0.5) == 2

    def test_known_percentiles_on_1_to_100(self):
        values = list(range(1, 101))
        assert nearest_rank_quantile(values, 0.50) == 50
        assert nearest_rank_quantile(values, 0.95) == 95
        assert nearest_rank_quantile(values, 0.99) == 99
        assert nearest_rank_quantile(values, 1.00) == 100

    def test_small_arrays(self):
        assert nearest_rank_quantile([7], 0.5) == 7
        assert nearest_rank_quantile([1, 2], 0.5) == 1
        assert nearest_rank_quantile([1, 2], 0.51) == 2
        assert nearest_rank_quantile([1, 2, 3], 0.5) == 2

    def test_empty_and_clamping(self):
        assert nearest_rank_quantile([], 0.5) == 0.0
        assert nearest_rank_quantile([3, 4], -1.0) == 3
        assert nearest_rank_quantile([3, 4], 2.0) == 4

    def test_p0_is_minimum(self):
        assert nearest_rank_quantile([1, 2, 3, 4], 0.0) == 1


class TestHistogram:
    def test_snapshot_quantiles(self):
        h = Histogram("t")
        for v in range(1, 101):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["total"] == sum(range(1, 101))
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["max"] == 100
        assert snap["p50"] == 50
        assert snap["p95"] == 95
        assert snap["p99"] == 99

    def test_window_bounds_memory_but_not_totals(self):
        h = Histogram("t", window=8)
        for v in range(100):
            h.observe(v)
        assert h.count == 100
        assert h.total == sum(range(100))
        # Quantiles come from the last 8 observations (92..99).
        assert h.quantile(0.0) == 92
        assert h.quantile(1.0) == 99

    def test_quantiles_single_sort(self):
        h = Histogram("t")
        for v in (4, 1, 3, 2):
            h.observe(v)
        assert h.quantiles([0.5, 1.0]) == [2, 4]

    def test_reset(self):
        h = Histogram("t")
        h.observe(5)
        h.reset()
        assert h.count == 0 and h.total == 0.0
        assert h.snapshot()["p50"] == 0.0


class TestCountersAndRegistry:
    def test_counter_inc(self):
        c = Counter("t")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_registry_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")
        reg.counter("a").inc()
        assert reg.counters() == {"a": 1}
        assert list(reg.histograms()) == ["b"]

    def test_global_helpers_share_one_registry(self):
        c = counter("test.obs.shared")
        assert REGISTRY.counter("test.obs.shared") is c
        h = histogram("test.obs.shared_h")
        assert REGISTRY.histogram("test.obs.shared_h") is h

    def test_counter_thread_safety(self):
        c = Counter("t")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


# ---------------------------------------------------------------------------
# tracing


class TestTracing:
    def test_disabled_span_is_shared_noop(self):
        assert span("anything", a=1) is NULL_SPAN
        with span("anything") as s:
            assert s is NULL_SPAN
            s.set(status=200)  # no-op, chainable
        assert len(TRACER) == 0

    def test_nesting_records_parentage(self):
        obs.enable()
        with span("root", kind="r") as root:
            with span("child") as child:
                with span("grandchild") as grand:
                    pass
            with span("sibling") as sib:
                pass
        spans = {s.name: s for s in TRACER.finished_spans()}
        assert spans["root"].parent_id is None
        assert spans["child"].parent_id == root.span_id
        assert spans["grandchild"].parent_id == spans["child"].span_id
        assert spans["sibling"].parent_id == root.span_id
        assert grand.duration_s is not None and grand.duration_s >= 0
        assert sib.duration_s <= spans["root"].duration_s

    def test_attrs_and_late_set(self):
        obs.enable()
        with span("req", endpoint="/x") as s:
            s.set(status=200)
        (done,) = TRACER.finished_spans()
        assert done.attrs == {"endpoint": "/x", "status": 200}

    def test_exception_marks_error_and_propagates(self):
        obs.enable()
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("x")
        (done,) = TRACER.finished_spans()
        assert done.attrs["error"] == "ValueError"
        assert done.duration_s is not None

    def test_record_external_region_nests_under_open_span(self):
        obs.enable()
        with span("orchestrator") as root:
            TRACER.record("worker.shard", TRACER.now(), 0.25, shard=3)
        ext = {s.name: s for s in TRACER.finished_spans()}["worker.shard"]
        assert ext.parent_id == root.span_id
        assert ext.duration_s == 0.25
        assert ext.attrs == {"shard": 3}

    def test_threads_have_independent_stacks(self):
        obs.enable()
        seen = {}

        def worker():
            with span("thread-span") as s:
                seen["parent"] = s

        with span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        by_name = {s.name: s for s in TRACER.finished_spans()}
        # The other thread had no open span, so its root has no parent.
        assert by_name["thread-span"].parent_id is None

    def test_max_spans_bounds_memory_and_counts_drops(self):
        obs.enable(max_spans=3)
        for i in range(5):
            with span(f"s{i}"):
                pass
        assert len(TRACER) == 3
        assert TRACER.dropped == 2
        obs.enable(max_spans=100_000)  # restore default for later tests

    def test_durations_ignore_wall_clock_steps(self, monkeypatch):
        obs.enable()
        # A wall clock jumping hours between reads must not skew spans.
        jumps = iter([0.0, -86_400.0, 7200.0, 0.0, -3600.0])
        real_time = time.time
        monkeypatch.setattr(
            time, "time", lambda: real_time() + next(jumps, 0.0)
        )
        with span("steady"):
            time.sleep(0.001)
        (done,) = TRACER.finished_spans()
        assert 0.0 <= done.duration_s < 5.0

    def test_disabled_overhead_is_negligible(self):
        # 100k disabled span() calls: a flag test + shared singleton.
        # Bound is extremely generous (~50x observed) to stay robust on
        # slow shared CI runners while still catching accidental
        # allocation or locking on the disabled path.
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            with span("hot", i=0):
                pass
        elapsed = time.perf_counter() - start
        assert len(TRACER) == 0
        assert elapsed < 2.0, f"{elapsed:.3f}s for {n} disabled spans"


# ---------------------------------------------------------------------------
# export


class TestTraceExport:
    def test_round_trip_and_validation(self, tmp_path):
        obs.enable()
        with span("outer", k=1):
            with span("inner"):
                pass
        path = tmp_path / "trace.json"
        payload = write_trace(str(path))
        on_disk = json.loads(path.read_text())
        validate_trace(on_disk)
        assert on_disk["schema_version"] == payload["schema_version"] == 1
        assert on_disk["clock"] == "monotonic"
        assert on_disk["span_count"] == 2
        names = [s["name"] for s in on_disk["spans"]]
        assert names == ["outer", "inner"]  # start order

    def test_validation_rejects_bad_payloads(self):
        base = {
            "schema_version": 1, "clock": "monotonic", "started_at": 0.0,
            "span_count": 0, "dropped_spans": 0, "spans": [],
        }
        validate_trace(base)
        for mutate, match in [
            (lambda p: p.update(schema_version=2), "schema_version"),
            (lambda p: p.update(clock="wall"), "clock"),
            (lambda p: p.update(span_count=3), "span_count"),
        ]:
            bad = dict(base)
            mutate(bad)
            with pytest.raises(TraceValidationError, match=match):
                validate_trace(bad)

    def test_validation_rejects_bad_spans(self):
        def payload(spans):
            return {
                "schema_version": 1, "clock": "monotonic", "started_at": 0.0,
                "span_count": len(spans), "dropped_spans": 0, "spans": spans,
            }

        ok = {"name": "a", "id": 1, "parent_id": None, "start_s": 0.0,
              "duration_s": 0.1, "thread": "t", "attrs": {}}
        validate_trace(payload([ok]))
        dup = dict(ok, id=1)
        with pytest.raises(TraceValidationError, match="duplicate"):
            validate_trace(payload([ok, dup]))
        orphan = dict(ok, id=2, parent_id=99)
        with pytest.raises(TraceValidationError, match="parent_id"):
            validate_trace(payload([ok, orphan]))
        negative = dict(ok, duration_s=-0.5)
        with pytest.raises(TraceValidationError, match="duration_s"):
            validate_trace(payload([negative]))

    def test_span_durations_sum_consistently_with_wall_time(self):
        obs.enable()
        start = time.perf_counter()
        with span("root"):
            for _ in range(3):
                with span("step"):
                    time.sleep(0.01)
        wall = time.perf_counter() - start
        payload = trace_payload()
        by_name = {}
        for s in payload["spans"]:
            by_name.setdefault(s["name"], []).append(s)
        (root,) = by_name["root"]
        steps = by_name["step"]
        assert len(steps) == 3
        child_sum = sum(s["duration_s"] for s in steps)
        # Children are contained in the root; the root in the wall time.
        assert child_sum <= root["duration_s"] <= wall


class TestMetricsExport:
    def test_payload_shape(self):
        reg = MetricsRegistry()
        reg.counter("dse.retries").inc(2)
        reg.histogram("lag").observe(0.5)
        payload = metrics_payload(reg)
        assert payload["counters"] == {"dse.retries": 2}
        assert payload["histograms"]["lag"]["count"] == 1

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("dse.shard_retries").inc(3)
        reg.histogram("dse.heartbeat_lag_seconds").observe(0.25)
        text = metrics_text(reg)
        assert "repro_dse_shard_retries 3\n" in text
        assert "repro_dse_heartbeat_lag_seconds_count 1" in text
        assert 'repro_dse_heartbeat_lag_seconds{quantile="50"} 0.25' in text
        assert text.endswith("\n")


# ---------------------------------------------------------------------------
# serving metrics on the shared instruments


class TestServeMetrics:
    def test_latency_quantiles_are_nearest_rank(self):
        m = ServeMetrics()
        for ms in (1, 2, 3, 4):
            m.record_request("/v1/predict", ms / 1000.0, 200)
        latency = m.snapshot()["latency"]["/v1/predict"]
        assert latency["count"] == 4
        assert latency["p50_ms"] == pytest.approx(2.0)  # was 3.0 pre-fix
        assert latency["p99_ms"] == pytest.approx(4.0)
        assert latency["max_ms"] == pytest.approx(4.0)

    def test_uptime_survives_wall_clock_step(self, monkeypatch):
        m = ServeMetrics()
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() - 86_400.0)
        uptime = m.snapshot()["uptime_seconds"]
        assert 0.0 <= uptime < 60.0

    def test_snapshot_carries_process_registry(self):
        counter("test.obs.serve_visible").inc(7)
        snap = ServeMetrics().snapshot()
        assert snap["obs"]["counters"]["test.obs.serve_visible"] == 7
        assert "started_at" in snap


# ---------------------------------------------------------------------------
# pipeline integration (shares the module-scoped trained stack)


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def predictor(self):
        from tests.test_pipeline import make_predictor

        return make_predictor()

    def _run(self, predictor, n=6):
        from repro.designspace import build_design_space
        from repro.dse import EvaluationPipeline
        from repro.kernels import get_kernel

        space = build_design_space(get_kernel("fir"))
        points = space.sample(__import__("random").Random(0), n)
        pipeline = EvaluationPipeline(predictor, batch_size=4)
        pipeline.predict_batch("fir", points)
        pipeline.predict_batch("fir", points)  # all cache hits
        return pipeline

    def test_disabled_run_adds_zero_trace_entries(self, predictor):
        assert not obs.is_enabled()
        self._run(predictor)
        assert len(TRACER) == 0

    def test_enabled_run_traces_batches_and_counts_cache(self, predictor):
        REGISTRY.reset()
        obs.enable()
        pipeline = self._run(predictor)
        names = {s.name for s in TRACER.finished_spans()}
        assert "pipeline.predict_batch" in names
        assert "pipeline.forward" in names
        counters = REGISTRY.counters()
        assert counters["pipeline.points"] == pipeline.stats.points
        assert counters["pipeline.cache_hits"] == pipeline.stats.cache_hits
        assert counters["pipeline.cache_misses"] == pipeline.stats.cache_misses
        assert counters["pipeline.cache_hits"] > 0
        fill = REGISTRY.histogram("pipeline.batch_fill").snapshot()
        assert fill["count"] == pipeline.stats.batches
        # Validate the whole trace while we have a real one.
        validate_trace(trace_payload())


# ---------------------------------------------------------------------------
# fused-engine op profiler (DEBUG=1)


class TestFusedOpProfiler:
    """The lazy engine's op profiler feeds the same process registry.

    Contracts mirror the tracer's: exported payloads validate against a
    pinned schema, enabled runs surface per-op counters in
    ``metrics_text``, and the disabled path costs one predicate per
    realize — nothing per op.
    """

    @staticmethod
    def _realize_small_graph():
        import numpy as np

        from repro.nn import Tensor
        from repro.nn.lazy import LazyTensor

        rng = np.random.default_rng(0)
        x = LazyTensor(rng.normal(size=(16, 8)))
        w = Tensor(rng.normal(size=(8, 4)))
        return ((x.relu() @ w).exp() + 1.0).sum(axis=1, keepdims=True).data

    def test_profile_export_schema_validates(self):
        from repro.nn.lazy import (
            PROFILE_SCHEMA_VERSION,
            op_profile,
            profiled,
            validate_profile,
        )

        with profiled():
            self._realize_small_graph()
            payload = op_profile()
        validate_profile(payload)
        assert payload["schema_version"] == PROFILE_SCHEMA_VERSION == 1
        assert payload["engine"] == "fused"
        assert payload["realizes"] >= 1
        assert payload["nodes_executed"] >= 4
        assert "matmul" in payload["ops"] or "matmul_stacked" in payload["ops"]
        for stats in payload["ops"].values():
            assert stats["count"] >= 1
            assert stats["ms"] >= 0.0

    def test_validate_profile_rejects_bad_payloads(self):
        from repro.errors import NNError
        from repro.nn.lazy import op_profile, profiled, validate_profile

        with profiled():
            self._realize_small_graph()
            payload = op_profile()
        for corrupt in [
            lambda p: p.pop("schema_version"),
            lambda p: p.update(schema_version=99),
            lambda p: p.update(engine="eager"),
            lambda p: p.update(realizes="three"),
            lambda p: p.update(ops={"add": {"count": 1}}),  # missing ms
        ]:
            bad = {k: (dict(v) if isinstance(v, dict) else v) for k, v in payload.items()}
            corrupt(bad)
            with pytest.raises(NNError):
                validate_profile(bad)

    def test_op_counters_reach_registry_and_metrics_text(self):
        from repro.nn.lazy import profiled

        REGISTRY.reset()
        with profiled():
            self._realize_small_graph()
        counters = REGISTRY.counters()
        op_counters = {k: v for k, v in counters.items() if k.startswith("engine.fused.op.")}
        assert op_counters, f"no engine.fused.op.* counters in {sorted(counters)}"
        assert counters.get("engine.fused.op.relu", 0) >= 1
        realize_hist = REGISTRY.histogram("engine.fused.realize_ms").snapshot()
        assert realize_hist["count"] >= 1
        text = metrics_text(REGISTRY)
        assert "repro_engine_fused_op_relu" in text
        assert "repro_engine_fused_realize_ms_count" in text

    def test_debug_env_enables_profiling(self, monkeypatch):
        from repro.nn.lazy import profiling_enabled
        from repro.nn.lazy.profile import set_profiling

        set_profiling(None)  # defer to the environment
        monkeypatch.delenv("DEBUG", raising=False)
        assert not profiling_enabled()
        monkeypatch.setenv("DEBUG", "1")
        assert profiling_enabled()
        monkeypatch.setenv("DEBUG", "0")
        assert not profiling_enabled()

    def test_disabled_path_records_nothing(self, monkeypatch):
        from repro.nn.lazy import op_profile, reset_profile
        from repro.nn.lazy.profile import collector, set_profiling

        monkeypatch.delenv("DEBUG", raising=False)
        set_profiling(None)
        reset_profile()
        assert collector() is None
        self._realize_small_graph()
        payload = op_profile()
        assert payload["realizes"] == 0
        assert payload["ops"] == {}

    def test_disabled_overhead_within_budget(self, monkeypatch):
        """The disabled check is one function call per *realize* (never
        per op), keeping it inside the <0.2% observability budget the
        instrumentation layer promises.  As with the tracer test above,
        the asserted bound is ~50x the observed cost so slow shared
        runners don't flake, while still catching an accidental per-op
        or allocating disabled path."""
        from repro.nn.lazy.profile import collector, set_profiling

        monkeypatch.delenv("DEBUG", raising=False)
        set_profiling(None)
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            collector()
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"{elapsed:.3f}s for {n} disabled collector() checks"
