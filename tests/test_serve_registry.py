"""Tests for the versioned predictor artifact registry.

The registry's contract: ``save`` → ``load`` reproduces the predictor
stack **bit-identically** (same weights, same dtype, same predictions),
and every way an artifact can be wrong — future schema, foreign format,
corrupt blob, mismatched vocabulary — fails loudly with a
:class:`~repro.errors.ArtifactError` (a :class:`ReproError`), never a
silently different model.
"""

import json

import numpy as np
import pytest

from repro.dse import EvaluationPipeline
from repro.errors import ArtifactError, ReproError
from repro.kernels import list_kernels
from repro.model.predictor import GNNDSEPredictor
from repro.nn.tensor import get_default_dtype, set_default_dtype
from repro.serve import (
    ARTIFACT_SCHEMA_VERSION,
    load_artifact,
    read_manifest,
    save_artifact,
    verify_artifact,
    vocab_fingerprint,
)

from tests.test_pipeline import make_predictor, sample_points


@pytest.fixture(scope="module")
def predictor():
    return make_predictor()


@pytest.fixture()
def artifact(predictor, tmp_path):
    path = tmp_path / "artifact"
    manifest = save_artifact(predictor, path)
    return path, manifest


def assert_same_predictions(original, loaded, kernels, seed=3, count=2):
    """Original and loaded stacks agree float-for-float on every kernel."""
    pipe_a = EvaluationPipeline(original, batch_size=count, engine="compiled")
    pipe_b = EvaluationPipeline(loaded, batch_size=count, engine="compiled")
    for kernel in kernels:
        points = sample_points(kernel, count, seed=seed)
        assert pipe_a.predict_batch(kernel, points) == pipe_b.predict_batch(
            kernel, points
        ), kernel


class TestSaveLoadRoundTrip:
    def test_manifest_shape(self, artifact):
        path, manifest = artifact
        assert manifest["format"] == "repro-gnn-dse-predictor"
        assert manifest["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert manifest["vocab_sha256"] == vocab_fingerprint()
        assert set(manifest["models"]) == {
            "classifier", "regressor", "bram_regressor",
        }
        for entry in manifest["models"].values():
            assert entry["blob"].startswith("blobs/sha256-")
            assert entry["parameters"] > 0
        # What save() returned is exactly what landed on disk.
        assert read_manifest(path) == manifest

    def test_state_dicts_identical(self, predictor, artifact):
        path, _ = artifact
        loaded = load_artifact(path)
        for role in ("classifier", "regressor", "bram_regressor"):
            original = getattr(predictor, role).state_dict()
            restored = getattr(loaded, role).state_dict()
            assert set(original) == set(restored)
            for name in original:
                assert original[name].dtype == restored[name].dtype, (role, name)
                assert np.array_equal(original[name], restored[name]), (role, name)
        assert (
            loaded.normalizer.normalization_factor
            == predictor.normalizer.normalization_factor
        )

    def test_predictions_bit_identical(self, predictor, artifact):
        path, _ = artifact
        assert_same_predictions(
            predictor, load_artifact(path), ["fir", "gemm-ncubed", "nw"]
        )

    def test_load_is_dtype_stable_across_process_defaults(self, tmp_path):
        """A float32 artifact loads bit-identically even when the process
        default is float64 (and vice versa via the suite fixture)."""
        previous = get_default_dtype()
        set_default_dtype(np.float32)
        try:
            original = make_predictor(seed=7)
            path = tmp_path / "f32"
            save_artifact(original, path)
        finally:
            set_default_dtype(previous)
        # Now loading under float64 default:
        loaded = load_artifact(path)
        for param in loaded.classifier.parameters():
            assert param.data.dtype == np.float32
        set_default_dtype(np.float32)
        try:
            assert_same_predictions(original, loaded, ["fir"])
        finally:
            set_default_dtype(previous)

    def test_resave_is_idempotent_and_dedupes_blobs(self, predictor, artifact):
        path, first = artifact
        blobs_before = sorted(p.name for p in (path / "blobs").iterdir())
        second = save_artifact(predictor, path)
        assert second == first
        assert sorted(p.name for p in (path / "blobs").iterdir()) == blobs_before

    def test_predictor_methods_wire_through(self, predictor, tmp_path):
        path = tmp_path / "via-methods"
        manifest = predictor.save(path)
        assert manifest["schema_version"] == ARTIFACT_SCHEMA_VERSION
        loaded = GNNDSEPredictor.load(path)
        assert isinstance(loaded, GNNDSEPredictor)

    def test_verify_passes_on_good_artifact(self, artifact):
        path, manifest = artifact
        assert verify_artifact(path)["models"] == manifest["models"]

    @pytest.mark.slow
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_round_trip_property_all_kernels(self, tmp_path, dtype):
        """Satellite property: save→load is bit-exact for every kernel,
        at both engine dtypes."""
        previous = get_default_dtype()
        set_default_dtype(dtype)
        try:
            original = make_predictor(seed=11)
            path = tmp_path / np.dtype(dtype).name
            save_artifact(original, path)
            loaded = load_artifact(path)
            for param in loaded.regressor.parameters():
                assert param.data.dtype == dtype
            assert_same_predictions(original, loaded, list_kernels(), count=2)
        finally:
            set_default_dtype(previous)

    @pytest.mark.slow
    def test_trained_stack_round_trip(self, tmp_path):
        """A (tiny) genuinely trained stack survives the round trip too —
        trained weights, fitted normalizer and all."""
        from repro.explorer import generate_database
        from repro.model import TrainConfig, train_predictor

        db = generate_database(kernels=["atax", "spmv-ellpack"], scale=0.12, seed=0)
        trained = train_predictor(
            db, "M5", train_config=TrainConfig(epochs=2, seed=0)
        )
        path = tmp_path / "trained"
        save_artifact(trained, path)
        loaded = load_artifact(path)
        assert (
            loaded.normalizer.normalization_factor
            == trained.normalizer.normalization_factor
        )
        assert_same_predictions(trained, loaded, ["atax", "spmv-ellpack"])


class TestArtifactRejection:
    def _edit_manifest(self, path, **changes):
        manifest = json.loads((path / "manifest.json").read_text())
        manifest.update(changes)
        (path / "manifest.json").write_text(json.dumps(manifest))

    def test_missing_artifact(self, tmp_path):
        with pytest.raises(ArtifactError, match="no artifact manifest"):
            load_artifact(tmp_path / "nothing-here")

    def test_wrong_schema_version(self, artifact):
        path, _ = artifact
        self._edit_manifest(path, schema_version=ARTIFACT_SCHEMA_VERSION + 1)
        with pytest.raises(ArtifactError) as info:
            load_artifact(path)
        message = str(info.value)
        assert str(ARTIFACT_SCHEMA_VERSION + 1) in message
        assert "repro save-model" in message
        # ArtifactError is a ReproError: one except clause catches both.
        assert isinstance(info.value, ReproError)

    def test_foreign_format(self, artifact):
        path, _ = artifact
        self._edit_manifest(path, format="some-other-tool")
        with pytest.raises(ArtifactError, match="not a predictor artifact"):
            read_manifest(path)

    def test_unreadable_manifest(self, artifact):
        path, _ = artifact
        (path / "manifest.json").write_text("{truncated")
        with pytest.raises(ArtifactError, match="unreadable manifest"):
            load_artifact(path)

    def test_vocab_mismatch(self, artifact):
        path, _ = artifact
        self._edit_manifest(path, vocab_sha256="0" * 64)
        with pytest.raises(ArtifactError, match="vocabulary"):
            load_artifact(path)

    def test_corrupt_blob(self, artifact):
        path, _ = artifact
        blob = next((path / "blobs").iterdir())
        data = bytearray(blob.read_bytes())
        data[len(data) // 2] ^= 0xFF
        blob.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="corrupt weight blob"):
            verify_artifact(path)

    def test_missing_blob(self, artifact):
        path, _ = artifact
        manifest = json.loads((path / "manifest.json").read_text())
        first_role = next(iter(manifest["models"]))
        blob = path / manifest["models"][first_role]["blob"]
        blob.unlink()
        # The other roles may share the remaining blobs; the missing one
        # must still be flagged.
        with pytest.raises(ArtifactError, match="missing weight blob"):
            verify_artifact(path)

    def test_missing_model_entry(self, artifact):
        path, _ = artifact
        manifest = json.loads((path / "manifest.json").read_text())
        del manifest["models"]["bram_regressor"]
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="missing models"):
            read_manifest(path)

    def test_malformed_model_config(self, artifact):
        path, _ = artifact
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["models"]["classifier"]["config"] = {"bogus": True}
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="malformed model config"):
            load_artifact(path)

    def test_unfitted_normalizer_refused_on_save(self, predictor, tmp_path):
        class Hollow:
            classifier = predictor.classifier
            regressor = predictor.regressor
            bram_regressor = predictor.bram_regressor

            class normalizer:
                normalization_factor = None

        with pytest.raises(ArtifactError, match="unfitted normalizer"):
            save_artifact(Hollow(), tmp_path / "hollow")
