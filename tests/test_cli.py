"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestKernelsCommand:
    def test_lists_all_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for name in ("atax", "gemm-ncubed", "2mm", "fir"):
            assert name in out

    def test_split_column(self, capsys):
        main(["kernels"])
        out = capsys.readouterr().out
        assert "unseen" in out and "train" in out


class TestSynthesizeCommand:
    def test_default_point(self, capsys):
        assert main(["synthesize", "-k", "spmv-ellpack"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out
        assert "valid" in out

    def test_with_settings(self, capsys):
        code = main(
            ["synthesize", "-k", "spmv-ellpack",
             "-s", "__PARA__L0=8", "-s", "__PIPE__L0=cg"]
        )
        assert code == 0

    def test_json_output(self, capsys):
        main(["synthesize", "-k", "spmv-ellpack", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "spmv_ellpack" or payload["latency"] > 0

    def test_unknown_kernel_fails(self, capsys):
        assert main(["synthesize", "-k", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_setting_rejected(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "-k", "atax", "-s", "not-a-setting"])


class TestDatabaseAndAutoDSE:
    def test_database_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "db.json"
        code = main(
            ["database", "-o", str(out_path), "--scale", "0.05",
             "--kernels", "spmv-ellpack"]
        )
        assert code == 0
        assert out_path.exists()
        from repro.explorer import Database

        db = Database.load(out_path)
        assert len(db) > 0

    def test_autodse(self, capsys):
        code = main(["autodse", "-k", "spmv-ellpack", "--max-evals", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tool-hours" in out

    def test_coverage_command(self, tmp_path, capsys):
        db_path = tmp_path / "db.json"
        main(["database", "-o", str(db_path), "--scale", "0.05",
              "--kernels", "spmv-ellpack"])
        capsys.readouterr()
        assert main(["coverage", "-k", "spmv-ellpack", "-d", str(db_path)]) == 0
        out = capsys.readouterr().out
        assert "coverage of spmv-ellpack" in out


class TestParserStructure:
    def test_all_commands_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["definitely-not-a-command"])

    def test_experiment_choices_limited(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "table99"])
