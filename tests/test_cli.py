"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestKernelsCommand:
    def test_lists_all_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for name in ("atax", "gemm-ncubed", "2mm", "fir"):
            assert name in out

    def test_split_column(self, capsys):
        main(["kernels"])
        out = capsys.readouterr().out
        assert "unseen" in out and "train" in out


class TestSynthesizeCommand:
    def test_default_point(self, capsys):
        assert main(["synthesize", "-k", "spmv-ellpack"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out
        assert "valid" in out

    def test_with_settings(self, capsys):
        code = main(
            ["synthesize", "-k", "spmv-ellpack",
             "-s", "__PARA__L0=8", "-s", "__PIPE__L0=cg"]
        )
        assert code == 0

    def test_json_output(self, capsys):
        main(["synthesize", "-k", "spmv-ellpack", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "spmv_ellpack" or payload["latency"] > 0

    def test_unknown_kernel_fails(self, capsys):
        assert main(["synthesize", "-k", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_setting_rejected(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "-k", "atax", "-s", "not-a-setting"])


class TestDatabaseAndAutoDSE:
    def test_database_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "db.json"
        code = main(
            ["database", "-o", str(out_path), "--scale", "0.05",
             "--kernels", "spmv-ellpack"]
        )
        assert code == 0
        assert out_path.exists()
        from repro.explorer import Database

        db = Database.load(out_path)
        assert len(db) > 0

    def test_autodse(self, capsys):
        code = main(["autodse", "-k", "spmv-ellpack", "--max-evals", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tool-hours" in out

    def test_coverage_command(self, tmp_path, capsys):
        db_path = tmp_path / "db.json"
        main(["database", "-o", str(db_path), "--scale", "0.05",
              "--kernels", "spmv-ellpack"])
        capsys.readouterr()
        assert main(["coverage", "-k", "spmv-ellpack", "-d", str(db_path)]) == 0
        out = capsys.readouterr().out
        assert "coverage of spmv-ellpack" in out


class TestParserStructure:
    def test_all_commands_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["definitely-not-a-command"])

    def test_experiment_choices_limited(self):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "table99"])


class TestModelArtifactCommands:
    """`save-model`, `load-model`, `dse --model <artifact>`, `--output`."""

    @pytest.fixture()
    def artifact_dir(self, tmp_path):
        from tests.test_pipeline import make_predictor

        path = tmp_path / "artifact"
        make_predictor().save(path)
        return path

    def test_save_and_load_model_chain(self, tmp_path, capsys):
        from repro.experiments.context import ExperimentContext
        from tests.test_pipeline import make_predictor

        db_path = tmp_path / "db.json"
        assert main(
            ["database", "-o", str(db_path), "--scale", "0.05",
             "--kernels", "spmv-ellpack"]
        ) == 0
        npz = tmp_path / "predictor.npz"
        ExperimentContext.save_predictor(make_predictor(), npz)
        out_dir = tmp_path / "artifact"
        capsys.readouterr()
        assert main(
            ["save-model", "-d", str(db_path), "-p", str(npz), "-o", str(out_dir)]
        ) == 0
        assert "wrote artifact" in capsys.readouterr().out
        assert (out_dir / "manifest.json").is_file()
        assert main(["load-model", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "blobs verified" in out
        assert "classifier" in out

    def test_load_model_rejects_non_artifact(self, tmp_path, capsys):
        assert main(["load-model", str(tmp_path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_dse_from_artifact_with_output(self, artifact_dir, tmp_path, capsys):
        from repro.serve.schemas import point_from_payload, prediction_from_payload

        out_json = tmp_path / "top.json"
        code = main(
            ["dse", "-k", "fir", "--model", str(artifact_dir), "--top", "3",
             "--time-limit", "3", "--batch-size", "4",
             "--output", str(out_json)]
        )
        assert code == 0
        assert "top-01" in capsys.readouterr().out
        payload = json.loads(out_json.read_text())
        assert payload["schema_version"] == 2
        assert payload["kernel"] == "fir"
        assert 1 <= len(payload["top"]) <= 3
        assert payload["top"][0]["rank"] == 1
        assert payload["pipeline_stats"]["points"] > 0
        # Both halves of each entry deserialize back into domain objects.
        for entry in payload["top"]:
            point_from_payload(entry["point"])
            prediction = prediction_from_payload(entry["prediction"])
            assert prediction.valid in (True, False)

    def test_dse_without_model_or_database_fails(self, capsys):
        assert main(["dse", "-k", "fir", "--time-limit", "1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_dse_race_strategy_with_output(self, artifact_dir, tmp_path, capsys):
        out_json = tmp_path / "race.json"
        code = main(
            ["dse", "-k", "fir", "--model", str(artifact_dir),
             "--strategy", "race", "--budget", "25", "--seed", "3",
             "--top", "3", "--output", str(out_json)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "race:" in out
        assert "budget" in out
        payload = json.loads(out_json.read_text())
        assert payload["strategy"] == "race"
        assert payload["race"]["queries"] <= 25
        assert payload["race"]["rounds"]
        assert 1 <= len(payload["top"]) <= 3

    def test_dse_strategy_rejects_workers(self, artifact_dir, capsys):
        code = main(
            ["dse", "-k", "fir", "--model", str(artifact_dir),
             "--strategy", "sa", "--budget", "10", "--workers", "2"]
        )
        assert code == 1
        assert "serially" in capsys.readouterr().err
