"""Shared test fixtures.

The NN engine defaults to float32 for training throughput; tests run in
float64 so numerical gradient checks stay tight.  Individual tests that
exercise the float32 path opt back in explicitly.
"""

import numpy as np
import pytest

from repro.nn.tensor import get_default_dtype, set_default_dtype


@pytest.fixture(autouse=True)
def float64_engine():
    previous = get_default_dtype()
    set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)
