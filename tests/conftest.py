"""Shared test fixtures.

The NN engine defaults to float32 for training throughput; tests run in
float64 so numerical gradient checks stay tight.  Individual tests that
exercise the float32 path opt back in explicitly.

``--engine {eager,fused}`` selects the tensor engine for the
engine-sensitive forward tests (``test_nn_tensor``, ``test_nn_layers``,
``test_model``, and the differential suite): the same test bodies run
against the eager reference or the fused lazy engine, so CI covers both
without duplicated tests.  Gradient checks always run eager — the lazy
engine is inference-only by design.
"""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, get_default_dtype, set_default_dtype


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        action="store",
        default="eager",
        choices=("eager", "fused"),
        help="tensor engine for engine-parametrized forward tests",
    )


@pytest.fixture(autouse=True)
def float64_engine():
    previous = get_default_dtype()
    set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)


@pytest.fixture
def engine(request) -> str:
    """The engine selected with ``--engine`` (default ``eager``)."""
    return request.config.getoption("--engine")


@pytest.fixture
def T(engine):
    """Input-tensor factory honouring ``--engine``.

    Returns a plain :class:`Tensor` under ``eager`` and a
    :class:`~repro.nn.lazy.LazyTensor` (recording, fused execution on
    demand) under ``fused``.  Forward-value tests build their inputs
    through this so one body exercises both engines.
    """

    def make(data):
        array = data.data if isinstance(data, Tensor) else data
        if engine == "fused":
            from repro.nn.lazy import LazyTensor

            return LazyTensor(array)
        return Tensor(array)

    return make


@pytest.fixture
def engine_batch(engine):
    """Wrap a :class:`~repro.nn.data.Batch` for the selected engine.

    Under ``fused`` the batch's node features become a LazyTensor, so a
    model's own forward records one lazy graph and realizes fused —
    exactly how the DSE pipeline drives it.  Under ``eager`` the batch
    is returned untouched.
    """

    def apply(batch):
        if engine == "fused":
            from repro.nn.lazy import LazyTensor

            batch.x = LazyTensor(np.asarray(batch.x))
        return batch

    return apply
