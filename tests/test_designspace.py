"""Tests for design-space generation, pruning rules, and iteration."""

import random

import pytest

from repro.designspace import (
    PruningRules,
    build_design_space,
    divisors,
    factor_candidates,
    point_key,
)
from repro.errors import DesignSpaceError
from repro.frontend.pragmas import PipelineOption, PragmaKind
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def gemm_space():
    return build_design_space(get_kernel("gemm-ncubed"))


@pytest.fixture(scope="module")
def stencil_space():
    return build_design_space(get_kernel("stencil"))


class TestFactorCandidates:
    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(7) == [1, 7]

    def test_candidates_are_divisors(self):
        for trip in (8, 30, 64, 100):
            for cand in factor_candidates(trip):
                assert trip % cand == 0

    def test_candidates_bounded(self):
        assert len(factor_candidates(720, max_candidates=8)) <= 8

    def test_extremes_kept(self):
        cands = factor_candidates(100)
        assert 1 in cands
        assert 100 in cands


class TestSpaceBasics:
    def test_default_point_neutral(self, gemm_space):
        point = gemm_space.default_point()
        for knob in gemm_space.knobs:
            if knob.kind is PragmaKind.PIPELINE:
                assert point[knob.name] is PipelineOption.OFF
            else:
                assert point[knob.name] == 1

    def test_validate_accepts_default(self, gemm_space):
        gemm_space.validate(gemm_space.default_point())

    def test_validate_rejects_missing_knob(self, gemm_space):
        point = gemm_space.default_point()
        point.popitem()
        with pytest.raises(DesignSpaceError):
            gemm_space.validate(point)

    def test_validate_rejects_bad_candidate(self, gemm_space):
        point = gemm_space.default_point()
        for knob in gemm_space.knobs:
            if knob.kind is PragmaKind.PARALLEL:
                point[knob.name] = 7  # 7 does not divide 64
                break
        with pytest.raises(DesignSpaceError):
            gemm_space.validate(point)

    def test_point_key_canonical(self):
        a = {"B": 2, "A": PipelineOption.COARSE}
        b = {"A": PipelineOption.COARSE, "B": 2}
        assert point_key(a) == point_key(b)

    def test_sample_canonical(self, gemm_space):
        rng = random.Random(0)
        for point in gemm_space.sample(rng, 50):
            gemm_space.validate(point)
            assert point_key(gemm_space.rules.canonicalize(point)) == point_key(point)

    def test_enumerate_unique(self, stencil_space):
        keys = [point_key(p) for p in stencil_space.enumerate(limit=500)]
        assert len(keys) == len(set(keys))

    def test_size_pruned_below_product(self, gemm_space):
        assert gemm_space.size() < gemm_space.product_size()

    def test_neighbors_differ_by_steps(self, gemm_space):
        point = gemm_space.default_point()
        neighbors = gemm_space.neighbors(point)
        assert neighbors
        for neighbor in neighbors:
            gemm_space.validate(neighbor)
            assert point_key(neighbor) != point_key(point)

    def test_mutations_cover_knob(self, gemm_space):
        point = gemm_space.default_point()
        knob = gemm_space.knobs[0]
        muts = gemm_space.mutations(point, knob.name)
        assert 1 <= len(muts) <= len(knob.candidates)


class TestPruningRules:
    def test_fg_pipeline_clears_inner_knobs(self, gemm_space):
        rules: PruningRules = gemm_space.rules
        point = gemm_space.default_point()
        # fg on the outermost loop (L0) must neutralise everything inside.
        pipe_l0 = next(
            k for k in gemm_space.knobs
            if k.kind is PragmaKind.PIPELINE and k.loop_label == "L0"
        )
        para_l1 = next(
            k for k in gemm_space.knobs
            if k.kind is PragmaKind.PARALLEL and k.loop_label == "L1"
        )
        point[pipe_l0.name] = PipelineOption.FINE
        point[para_l1.name] = 8
        canonical = rules.canonicalize(point)
        assert canonical[para_l1.name] == 1

    def test_full_unroll_turns_pipeline_off(self, gemm_space):
        rules = gemm_space.rules
        point = gemm_space.default_point()
        para_l2 = next(
            k for k in gemm_space.knobs
            if k.kind is PragmaKind.PARALLEL and k.loop_label == "L2"
        )
        pipe_l2 = next(
            k for k in gemm_space.knobs
            if k.kind is PragmaKind.PIPELINE and k.loop_label == "L2"
        )
        point[para_l2.name] = 64  # trip count of L2
        point[pipe_l2.name] = PipelineOption.COARSE
        canonical = rules.canonicalize(point)
        assert canonical[pipe_l2.name] is PipelineOption.OFF

    def test_tile_clamped_to_fit(self, gemm_space):
        rules = gemm_space.rules
        point = gemm_space.default_point()
        tile = next(k for k in gemm_space.knobs if k.kind is PragmaKind.TILE)
        para = next(
            k for k in gemm_space.knobs
            if k.kind is PragmaKind.PARALLEL and k.loop_label == tile.loop_label
        )
        point[tile.name] = max(int(c) for c in tile.candidates)
        point[para.name] = max(int(c) for c in para.candidates)
        canonical = rules.canonicalize(point)
        loop = rules.loop_of(tile)
        assert canonical[tile.name] * 1 <= loop.trip_count

    def test_canonicalize_idempotent(self, stencil_space):
        rng = random.Random(1)
        rules = stencil_space.rules
        for point in stencil_space.sample(rng, 30):
            once = rules.canonicalize(point)
            assert rules.canonicalize(once) == once

    def test_dependency_of_parallel_includes_parent_pipeline(self, gemm_space):
        rules = gemm_space.rules
        para_l1 = next(
            k for k in gemm_space.knobs
            if k.kind is PragmaKind.PARALLEL and k.loop_label == "L1"
        )
        deps = rules.dependency_of(para_l1)
        assert any(
            d.kind is PragmaKind.PIPELINE and d.loop_label == "L0" for d in deps
        )


class TestAllKernels:
    def test_spaces_build_for_every_kernel(self):
        from repro.kernels import KERNELS

        for name, spec in KERNELS.items():
            space = build_design_space(spec)
            assert len(space) == len(spec.pragmas), name
            assert space.product_size() >= 1

    def test_2mm_space_is_enormous(self):
        space = build_design_space(get_kernel("2mm"))
        assert space.product_size() > 10**8  # paper: 492M configs
