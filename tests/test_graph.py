"""Tests for ProGraML-style graph construction and feature encoding."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.frontend.pragmas import PipelineOption
from repro.graph import (
    FLOW_DATA,
    FLOW_PRAGMA,
    NTYPE_INSTRUCTION,
    encode_kernel,
    kernel_graph,
)
from repro.kernels import KERNELS, toy_kernel


@pytest.fixture(scope="module")
def toy_graph():
    return kernel_graph(toy_kernel())


@pytest.fixture(scope="module")
def toy_encoded():
    return encode_kernel(toy_kernel())


class TestGraphStructure:
    def test_node_kinds_present(self, toy_graph):
        stats = toy_graph.stats()
        assert stats["instruction_nodes"] > 0
        assert stats["variable_nodes"] > 0
        assert stats["constant_nodes"] > 0
        assert stats["pragma_nodes"] == 2  # Code 1 has two pragmas

    def test_edge_flows_present(self, toy_graph):
        stats = toy_graph.stats()
        assert stats["control_edges"] > 0
        assert stats["data_edges"] > 0
        assert stats["pragma_edges"] == 2

    def test_pragma_nodes_attach_to_loop_icmp(self, toy_graph):
        icmp_targets = set()
        for edge in toy_graph.edges:
            if edge.flow == FLOW_PRAGMA:
                target = toy_graph.nodes[edge.dst]
                assert target.ntype == NTYPE_INSTRUCTION
                assert target.key_text.startswith("icmp")
                icmp_targets.add(edge.dst)
        assert len(icmp_targets) == 1  # both pragmas hit the same loop icmp

    def test_pragma_edge_positions_distinguish_kinds(self, toy_graph):
        positions = sorted(
            e.position for e in toy_graph.edges if e.flow == FLOW_PRAGMA
        )
        assert positions == [1, 2]  # pipeline=1, parallel=2 (tile=0 absent)

    def test_icmp_carries_trip_count(self, toy_graph):
        icmps = [n for n in toy_graph.nodes if n.key_text.startswith("icmp")]
        assert any(n.trip_count == 64 for n in icmps)

    def test_call_edges_for_multi_function(self):
        from repro.frontend.parser import parse_source
        from repro.frontend.pragmas import collect_pragmas
        from repro.graph import build_program_graph
        from repro.ir import lower_unit

        unit = parse_source(
            "int inc(int v) { return v + 1; }\n"
            "void top(int a[4]) { a[0] = inc(a[1]); }"
        )
        graph = build_program_graph(lower_unit(unit), collect_pragmas(unit))
        assert graph.stats()["call_edges"] >= 2  # call->entry and ret->call

    def test_all_kernels_build(self):
        for spec in KERNELS.values():
            graph = kernel_graph(spec)
            stats = graph.stats()
            assert stats["pragma_nodes"] == len(spec.analysis.pragmas), spec.name
            assert stats["nodes"] > 30

    def test_to_networkx(self, toy_graph):
        nx_graph = toy_graph.to_networkx()
        assert nx_graph.number_of_nodes() == toy_graph.num_nodes

    def test_bad_edge_rejected(self, toy_graph):
        with pytest.raises(GraphError):
            toy_graph.add_edge(0, 10_000, FLOW_DATA)


class TestEncoding:
    def test_feature_dimensions(self, toy_encoded):
        assert toy_encoded.x_base.shape[1] == 124
        assert toy_encoded.edge_attr.shape[1] == 13

    def test_reverse_edges_doubled(self, toy_encoded):
        graph = toy_encoded.graph
        assert toy_encoded.edge_index.shape[1] == 2 * graph.num_edges

    def test_reverse_bit_set_on_half(self, toy_encoded):
        reversed_bits = toy_encoded.edge_attr[:, -1]
        assert reversed_bits.sum() == toy_encoded.edge_attr.shape[0] / 2

    def test_fill_only_touches_pragma_rows(self, toy_encoded):
        x = toy_encoded.fill({"_PIPE_L1": PipelineOption.FINE, "_PARA_L1": 16})
        changed = np.nonzero(np.abs(x - toy_encoded.x_base).sum(axis=1))[0]
        assert set(changed.tolist()) <= set(toy_encoded.pragma_rows.values())

    def test_fill_distinguishes_options(self, toy_encoded):
        x1 = toy_encoded.fill({"_PARA_L1": 2})
        x2 = toy_encoded.fill({"_PARA_L1": 32})
        assert np.abs(x1 - x2).max() > 0

    def test_fill_unknown_knob_raises(self, toy_encoded):
        with pytest.raises(GraphError):
            toy_encoded.fill({"__NOT_A_KNOB__": 4})

    def test_rows_one_hot_node_type(self, toy_encoded):
        graph = toy_encoded.graph
        for node in graph.nodes:
            onehot = toy_encoded.x_base[node.id, :4]
            assert onehot.sum() == 1.0
            assert onehot[node.ntype] == 1.0

    def test_same_structure_across_design_points(self, toy_encoded):
        # Only pragma-node attributes differ between design points of a
        # kernel (Section 4.2) — structure is shared.
        x1 = toy_encoded.fill({"_PARA_L1": 4})
        x2 = toy_encoded.fill({"_PARA_L1": 8})
        non_pragma = [
            i
            for i in range(toy_encoded.num_nodes)
            if i not in toy_encoded.pragma_rows.values()
        ]
        np.testing.assert_array_equal(x1[non_pragma], x2[non_pragma])


class TestVocab:
    def test_known_opcodes_mapped(self):
        from repro.graph import node_text_index, vocab_size

        assert node_text_index("load") != node_text_index("store")
        assert node_text_index("PIPELINE") < vocab_size()

    def test_unknown_text_goes_to_unk(self):
        from repro.graph import node_text_index
        from repro.graph.vocab import UNK_INDEX

        assert node_text_index("never_seen_text") == UNK_INDEX

    def test_array_pointer_collapse(self):
        from repro.graph import node_text_index

        assert node_text_index("[64 x i32]*") == node_text_index("[8 x double]*")
