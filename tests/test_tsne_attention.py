"""Tests for t-SNE, neighborhood coherence, and attention reports."""

import numpy as np
import pytest

from repro.analysis import neighborhood_coherence, tsne


class TestTSNE:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 10))
        y = tsne(x, iterations=60, seed=0)
        assert y.shape == (40, 2)
        assert np.all(np.isfinite(y))

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(30, 8))
        y1 = tsne(x, iterations=50, seed=3)
        y2 = tsne(x, iterations=50, seed=3)
        np.testing.assert_allclose(y1, y2)

    def test_separates_clear_clusters(self):
        rng = np.random.default_rng(2)
        a = rng.normal(loc=0.0, scale=0.1, size=(25, 6))
        b = rng.normal(loc=8.0, scale=0.1, size=(25, 6))
        y = tsne(np.vstack([a, b]), iterations=250, seed=0, perplexity=10.0)
        centroid_a = y[:25].mean(axis=0)
        centroid_b = y[25:].mean(axis=0)
        # Nearest-centroid assignment recovers the true clusters.
        labels = np.array([0] * 25 + [1] * 25)
        d_a = np.linalg.norm(y - centroid_a, axis=1)
        d_b = np.linalg.norm(y - centroid_b, axis=1)
        assigned = (d_b < d_a).astype(int)
        accuracy = max((assigned == labels).mean(), (assigned != labels).mean())
        assert accuracy > 0.9

    def test_tiny_input(self):
        assert tsne(np.zeros((2, 4))).shape == (2, 2)


class TestCoherence:
    def test_structured_embedding_scores_low(self):
        # Embedding where position encodes the value exactly.
        values = np.linspace(0, 10, 60)
        embedding = np.stack([values, np.zeros(60)], axis=1)
        score = neighborhood_coherence(embedding, values, k=5)
        assert score < 0.3

    def test_random_embedding_scores_near_one(self):
        rng = np.random.default_rng(0)
        embedding = rng.normal(size=(80, 2))
        values = rng.normal(size=80)
        score = neighborhood_coherence(embedding, values, k=8)
        assert 0.6 < score < 1.4

    def test_constant_values(self):
        embedding = np.random.default_rng(1).normal(size=(30, 2))
        assert neighborhood_coherence(embedding, np.ones(30)) == 1.0

    def test_too_few_points(self):
        assert neighborhood_coherence(np.zeros((3, 2)), np.arange(3), k=10) == 1.0


class TestAttentionReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.analysis import attention_report
        from repro.explorer import generate_database
        from repro.model import TrainConfig, train_predictor

        db = generate_database(kernels=["spmv-ellpack"], scale=0.4, seed=0)
        predictor = train_predictor(
            db, config_name="M7", train_config=TrainConfig(epochs=3)
        )
        record = db.best_valid("spmv-ellpack") or next(iter(db))
        return attention_report(predictor, "spmv-ellpack", record.design_point)

    def test_scores_normalised(self, report):
        total = sum(n.score for n in report.nodes)
        assert total == pytest.approx(1.0, abs=1e-5)

    def test_covers_all_nodes(self, report):
        from repro.graph import kernel_graph
        from repro.kernels import get_kernel

        graph = kernel_graph(get_kernel("spmv-ellpack"))
        assert len(report.nodes) == graph.num_nodes

    def test_top_sorted(self, report):
        top = report.top(5)
        scores = [n.score for n in top]
        assert scores == sorted(scores, reverse=True)

    def test_type_summary_keys(self, report):
        summary = report.mean_score_by_type()
        assert "pragma" in summary
        assert "instruction" in summary
