"""Tests for the simulated-annealing DSE and database coverage metrics."""

import pytest

from repro.designspace import build_design_space
from repro.dse import SimulatedAnnealingDSE
from repro.explorer import Database, Evaluator, RandomExplorer, measure_coverage
from repro.hls import MerlinHLSTool
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def tool():
    return MerlinHLSTool()


@pytest.fixture(scope="module")
def atax():
    return get_kernel("atax")


@pytest.fixture(scope="module")
def atax_space(atax):
    return build_design_space(atax)


def hls_scorer(tool, spec, fit=0.8):
    def scorer(point):
        result = tool.synthesize(spec, point)
        return (result.valid and result.fits(fit), float(result.latency))

    return scorer


class TestSimulatedAnnealing:
    def test_finds_improvement(self, tool, atax, atax_space):
        sa = SimulatedAnnealingDSE(atax_space, hls_scorer(tool, atax), seed=0)
        result = sa.run(max_evals=120)
        baseline = tool.synthesize(atax, atax_space.default_point()).latency
        assert result.best_point is not None
        assert result.best_score < baseline

    def test_budget_respected(self, tool, atax, atax_space):
        sa = SimulatedAnnealingDSE(atax_space, hls_scorer(tool, atax), seed=1)
        result = sa.run(max_evals=50)
        assert result.evaluations <= 50

    def test_trajectory_monotone_best(self, tool, atax, atax_space):
        sa = SimulatedAnnealingDSE(atax_space, hls_scorer(tool, atax), seed=2)
        result = sa.run(max_evals=80)
        finite = [t for t in result.trajectory if t != float("inf")]
        assert all(b <= a for a, b in zip(finite, finite[1:]))

    def test_deterministic_per_seed(self, tool, atax, atax_space):
        runs = [
            SimulatedAnnealingDSE(atax_space, hls_scorer(tool, atax), seed=7).run(60)
            for _ in range(2)
        ]
        assert runs[0].best_score == runs[1].best_score
        assert runs[0].evaluations == runs[1].evaluations

    def test_accepts_some_moves(self, tool, atax, atax_space):
        sa = SimulatedAnnealingDSE(atax_space, hls_scorer(tool, atax), seed=3)
        result = sa.run(max_evals=80)
        assert result.accepted_moves > 0


class TestCoverage:
    def test_empty_database(self, atax_space):
        report = measure_coverage(Database(), atax_space)
        assert report.records == 0
        assert report.min_knob_fraction == 0.0

    def test_coverage_grows_with_sampling(self, tool, atax, atax_space):
        db = Database()
        evaluator = Evaluator(tool, db)
        explorer = RandomExplorer(atax, atax_space, evaluator, seed=0)
        explorer.run(max_evals=10)
        small = measure_coverage(db, atax_space)
        explorer2 = RandomExplorer(atax, atax_space, evaluator, seed=99)
        explorer2.run(max_evals=60)
        large = measure_coverage(db, atax_space)
        assert large.records > small.records
        assert large.mean_knob_fraction >= small.mean_knob_fraction

    def test_full_coverage_on_small_kernel(self, tool):
        spec = get_kernel("spmv-crs")
        space = build_design_space(spec)
        db = Database()
        evaluator = Evaluator(tool, db)
        for point in space.enumerate():
            evaluator.evaluate(spec, point)
        report = measure_coverage(db, space)
        assert report.min_knob_fraction == 1.0
        assert report.latency_decades >= 1

    def test_pretty_renders(self, tool, atax, atax_space):
        db = Database()
        Evaluator(tool, db).evaluate(atax, atax_space.default_point())
        text = measure_coverage(db, atax_space).pretty()
        assert "coverage of atax" in text
