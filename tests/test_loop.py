"""Tests for the active-learning loop: the versioned model registry with
its atomic ``current`` pointer, the LoopState resume journal, the
ActiveLoop orchestrator (round mechanics, holdout gating, resume
bit-identity), and the ``loop``/``artifacts`` CLI commands."""

import json
import os
import random
import threading

import pytest

from repro.cli import main
from repro.errors import ArtifactError, LoopError
from repro.explorer.database import Database, DesignRecord
from repro.hls import MerlinHLSTool
from repro.designspace import build_design_space
from repro.kernels import get_kernel
from repro.loop import LOOP_STATE_SCHEMA_VERSION, ActiveLoop, LoopConfig, LoopState
from repro.serve import ModelRegistry
from repro.serve.registry import (
    artifact_fingerprint,
    load_artifact,
    read_manifest,
    verify_artifact,
)

from tests.test_pipeline import make_predictor


@pytest.fixture(scope="module")
def predictor():
    return make_predictor(seed=0)


@pytest.fixture(scope="module")
def predictor_b():
    return make_predictor(seed=1)


def tiny_config(**overrides):
    base = dict(
        kernels=("gesummv",),
        rounds=2,
        label_budget=5,
        scan=40,
        eval_points=24,
        config_name="M7",
        epochs=1,
        seed=0,
    )
    base.update(overrides)
    return LoopConfig(**base)


def make_loop(tmp_path, predictor, db=None, registry=None, **config_overrides):
    registry = registry or ModelRegistry(tmp_path / "registry")
    return ActiveLoop(
        predictor,
        db if db is not None else Database(),
        registry,
        tiny_config(**config_overrides),
        tmp_path / "loop-db.json",
        tmp_path / "loop-state.json",
    )


# ---------------------------------------------------------------------------
# ModelRegistry: versions + the atomic `current` pointer


class TestModelRegistry:
    def test_publish_grows_versions_and_flips_current(self, tmp_path, predictor, predictor_b):
        registry = ModelRegistry(tmp_path / "reg")
        assert registry.versions() == []
        assert registry.current() is None
        v1 = registry.publish(predictor, created=1.0)
        assert v1.version == "v0001"
        assert registry.current_version_name() == "v0001"
        v2 = registry.publish(predictor_b, created=2.0)
        assert [v.version for v in registry.versions()] == ["v0001", "v0002"]
        assert registry.current_version_name() == "v0002"
        assert registry.current().sha256 == v2.sha256
        assert v1.sha256 != v2.sha256
        assert v2.created == 2.0

    def test_publish_without_activate_keeps_pointer(self, tmp_path, predictor, predictor_b):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(predictor, created=1.0)
        registry.publish(predictor_b, activate=False, created=2.0)
        assert registry.current_version_name() == "v0001"
        assert len(registry.versions()) == 2
        registry.set_current("v0002")
        assert registry.current_version_name() == "v0002"

    def test_fingerprint_is_content_addressed(self, tmp_path, predictor):
        registry = ModelRegistry(tmp_path / "reg")
        v1 = registry.publish(predictor, created=1.0)
        # Identical weights → identical fingerprint, regardless of slot.
        v2 = registry.publish(predictor, created=99.0)
        assert v1.sha256 == v2.sha256
        assert v1.sha256 == artifact_fingerprint(read_manifest(v1.path))

    def test_set_current_unknown_version_raises(self, tmp_path, predictor):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(predictor, created=1.0)
        with pytest.raises(ArtifactError, match="v0042"):
            registry.set_current("v0042")

    def test_dangling_pointer_raises(self, tmp_path, predictor):
        registry = ModelRegistry(tmp_path / "reg")
        version = registry.publish(predictor, created=1.0)
        import shutil

        shutil.rmtree(version.path)
        with pytest.raises(ArtifactError, match="current"):
            registry.current()

    def test_is_registry(self, tmp_path, predictor):
        assert not ModelRegistry.is_registry(tmp_path / "nope")
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(predictor, created=1.0)
        assert ModelRegistry.is_registry(tmp_path / "reg")
        # A bare artifact directory is NOT a registry.
        assert not ModelRegistry.is_registry(registry.current().path)

    def test_crash_mid_swap_leaves_old_current_intact(
        self, tmp_path, predictor, predictor_b, monkeypatch
    ):
        """Crash injection: dying inside the pointer flip must leave the
        previous `current` fully readable."""
        registry = ModelRegistry(tmp_path / "reg")
        v1 = registry.publish(predictor, created=1.0)

        import repro.serve.registry as registry_module

        real_replace = os.replace

        def exploding_replace(src, dst):
            if os.fspath(dst) == os.fspath(registry.current_pointer):
                raise OSError("injected crash mid-swap")
            return real_replace(src, dst)

        monkeypatch.setattr(registry_module.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="injected"):
            registry.publish(predictor_b, created=2.0)
        monkeypatch.undo()

        # Old pointer intact, old artifact loadable and verified.
        assert registry.current_version_name() == "v0001"
        current = registry.current()
        assert current.sha256 == v1.sha256
        verify_artifact(current.path)
        load_artifact(current.path)
        # The new version's artifact itself landed completely; only the
        # flip failed — a re-publish (or set_current) can activate it.
        registry2 = ModelRegistry(tmp_path / "reg")
        registry2.set_current("v0002")
        assert registry2.current_version_name() == "v0002"

    def test_concurrent_readers_never_see_half_written(
        self, tmp_path, predictor, predictor_b
    ):
        """Readers resolving `current` during swaps always land on a
        complete, verifiable artifact of a known fingerprint."""
        registry = ModelRegistry(tmp_path / "reg")
        v1 = registry.publish(predictor, created=1.0)
        known = {v1.sha256}
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    current = registry.current()
                    manifest = verify_artifact(current.path)
                    sha = artifact_fingerprint(manifest)
                    if sha not in known:
                        errors.append(f"unknown fingerprint {sha[:12]}")
                    if sha != current.sha256:
                        errors.append("meta/manifest fingerprint mismatch")
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(repr(exc))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for index, seed in enumerate((1, 2, 3)):
                version = registry.publish(make_predictor(seed=seed), created=float(index))
                known.add(version.sha256)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []


# ---------------------------------------------------------------------------
# LoopState journal


class TestLoopState:
    def test_write_load_roundtrip(self, tmp_path):
        state = LoopState(tmp_path / "state.json")
        fp = LoopState.fingerprint({"kernels": ["gesummv"], "seed": 0})
        state.write(fp, "db.json", "reg", {"round": 0}, [{"round": 1}])
        raw = state.validate(fp)
        assert raw["schema_version"] == LOOP_STATE_SCHEMA_VERSION
        assert raw["completed"] == [{"round": 1}]

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text('{"schema_version": 1, "trunc')
        with pytest.raises(LoopError, match="corrupt or half-written"):
            LoopState(path).load()

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(LoopError, match="schema"):
            LoopState(path).load()

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "state.json"
        payload = {
            "schema_version": LOOP_STATE_SCHEMA_VERSION,
            "fingerprint": "x",
            "completed": [],
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(LoopError, match="missing field"):
            LoopState(path).load()

    def test_fingerprint_mismatch_raises(self, tmp_path):
        state = LoopState(tmp_path / "state.json")
        fp = LoopState.fingerprint({"seed": 0})
        state.write(fp, "db.json", "reg", None, [])
        with pytest.raises(LoopError, match="different loop configuration"):
            state.validate(LoopState.fingerprint({"seed": 1}))


# ---------------------------------------------------------------------------
# ActiveLoop rounds


class TestActiveLoop:
    def test_rounds_label_train_publish(self, tmp_path, predictor):
        loop = make_loop(tmp_path, predictor)
        result = loop.run()
        assert len(result.rounds) == 2
        # The registry holds baseline + one version per accepted round.
        accepted = sum(1 for r in result.rounds if r["accepted"])
        assert len(loop.registry.versions()) == 1 + accepted
        # Holdout RMSE of the serving model never increases (the gate).
        trajectory = result.rmse_trajectory()
        assert all(b <= a + 1e-12 for a, b in zip(trajectory, trajectory[1:]))
        # Labels carry full provenance.
        loop_records = [r for r in loop.database if r.source.startswith("loop:")]
        assert loop_records
        for record in loop_records:
            assert record.round in (1, 2)
            assert record.source == f"loop:r{record.round}"
            assert record.created == float(record.round)
        # Database and state were persisted.
        assert (tmp_path / "loop-db.json").exists()
        state = LoopState(tmp_path / "loop-state.json")
        raw = state.load()
        assert len(raw["completed"]) == 2

    def test_selection_never_labels_holdout_points(self, tmp_path, predictor):
        loop = make_loop(tmp_path, predictor)
        loop.run()
        eval_keys = loop._eval_keys["gesummv"]
        labeled = {r.point_key for r in loop.database if r.source.startswith("loop:")}
        assert not labeled & eval_keys

    def test_gate_rejects_regressing_candidate(self, tmp_path, predictor):
        loop = make_loop(tmp_path, predictor, rounds=1)
        metrics = iter([1.0, 2.0])  # baseline 1.0, candidate 2.0 (worse)

        def scripted_metrics(p):
            rmse = next(metrics)
            return {
                "rmse": {"latency": rmse, "DSP": rmse, "LUT": rmse, "FF": rmse,
                         "BRAM": rmse, "all": rmse},
                "classification": {"accuracy": 1.0, "f1": 1.0},
                "eval_points": {},
            }

        loop._metrics = scripted_metrics
        result = loop.run()
        report = result.rounds[0]
        assert not report["accepted"]
        assert report["candidate_rmse"] == 2.0
        # The serving model (and its metrics) stay at the baseline.
        assert report["metrics"]["rmse"]["all"] == 1.0
        assert report["artifact_version"] == "v0001"
        assert len(loop.registry.versions()) == 1

    def test_no_gate_publishes_anyway(self, tmp_path, predictor):
        loop = make_loop(tmp_path, predictor, rounds=1, gate_on_holdout=False)
        metrics = iter([1.0, 2.0])

        def scripted_metrics(p):
            rmse = next(metrics)
            return {
                "rmse": {"latency": rmse, "DSP": rmse, "LUT": rmse, "FF": rmse,
                         "BRAM": rmse, "all": rmse},
                "classification": {"accuracy": 1.0, "f1": 1.0},
                "eval_points": {},
            }

        loop._metrics = scripted_metrics
        result = loop.run()
        assert result.rounds[0]["accepted"]
        assert result.rounds[0]["artifact_version"] == "v0002"

    def test_round_reports_structure(self, tmp_path, predictor):
        result = make_loop(tmp_path, predictor, rounds=1).run()
        report = result.rounds[0]
        for key in ("round", "selected", "scanned", "labeled", "added",
                    "overwrites", "database_size", "accepted", "metrics",
                    "artifact_version", "artifact_sha256"):
            assert key in report
        assert report["selected"] == {"gesummv": 5}
        assert report["labeled"] == 5

    def test_empty_kernels_rejected(self):
        with pytest.raises(LoopError):
            LoopConfig(kernels=())


# ---------------------------------------------------------------------------
# Resume: kill mid-round, rerun, identical database + artifact chain


class TestResume:
    def _chain(self, registry_root):
        out = []
        for version_dir in sorted((registry_root / "versions").iterdir()):
            manifest = read_manifest(version_dir)
            out.append((version_dir.name, artifact_fingerprint(manifest)))
        return out

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        # Run A: uninterrupted.
        a = tmp_path / "a"
        a.mkdir()
        loop_a = make_loop(a, make_predictor(seed=0))
        result_a = loop_a.run()

        # Run B: killed inside round 2's fine-tune, then resumed fresh.
        b = tmp_path / "b"
        b.mkdir()
        loop_b = make_loop(b, make_predictor(seed=0))
        original = loop_b._fine_tune

        def dying_fine_tune(pred, round_index):
            if round_index == 2:
                raise KeyboardInterrupt
            return original(pred, round_index)

        loop_b._fine_tune = dying_fine_tune
        with pytest.raises(KeyboardInterrupt):
            loop_b.run()

        resumed = make_loop(b, make_predictor(seed=0),
                            registry=ModelRegistry(b / "registry"))
        result_b = resumed.run(resume=True)
        assert result_b.resumed_rounds == 1

        assert (a / "loop-db.json").read_bytes() == (b / "loop-db.json").read_bytes()
        assert self._chain(a / "registry") == self._chain(b / "registry")
        assert result_a.rmse_trajectory() == result_b.rmse_trajectory()

    def test_resume_with_wrong_config_raises(self, tmp_path, predictor):
        loop = make_loop(tmp_path, predictor, rounds=1)
        loop.run()
        other = make_loop(tmp_path, predictor, rounds=1, seed=5,
                          registry=loop.registry)
        with pytest.raises(LoopError, match="different loop configuration"):
            other.run(resume=True)

    def test_resume_without_state_runs_fresh(self, tmp_path, predictor):
        loop = make_loop(tmp_path, predictor, rounds=1)
        result = loop.run(resume=True)
        assert result.resumed_rounds == 0
        assert len(result.rounds) == 1

    def test_completed_resume_is_a_noop(self, tmp_path, predictor):
        loop = make_loop(tmp_path, predictor)
        loop.run()
        chain = self._chain(tmp_path / "registry")
        again = make_loop(tmp_path, predictor, registry=loop.registry)
        result = again.run(resume=True)
        assert result.resumed_rounds == 2
        assert len(result.rounds) == 2
        assert self._chain(tmp_path / "registry") == chain


# ---------------------------------------------------------------------------
# CLI


@pytest.fixture()
def seed_setup(tmp_path):
    """A tiny seed database + saved weights for the CLI commands."""
    from repro.experiments.context import ExperimentContext

    tool = MerlinHLSTool()
    db = Database()
    rng = random.Random(0)
    for kernel in ("fir",):
        spec = get_kernel(kernel)
        space = build_design_space(spec)
        for point in space.sample(rng, 25):
            db.add(DesignRecord.from_result(tool.synthesize(spec, point), point,
                                            source="seed"))
    db_path = tmp_path / "seed-db.json"
    db.save(db_path)
    weights = tmp_path / "weights.npz"
    ExperimentContext.save_predictor(make_predictor(seed=0), weights)
    return db_path, weights


class TestCLI:
    def _loop_args(self, tmp_path, seed_setup, *extra):
        db_path, weights = seed_setup
        return [
            "loop",
            "-d", str(db_path),
            "-p", str(weights),
            "--registry", str(tmp_path / "registry"),
            "--kernels", "gesummv",
            "--rounds", "1",
            "--label-budget", "4",
            "--scan", "30",
            "--eval-points", "20",
            "--epochs", "1",
            *extra,
        ]

    def test_loop_then_artifacts(self, tmp_path, seed_setup, capsys):
        assert main(self._loop_args(tmp_path, seed_setup)) == 0
        out = capsys.readouterr().out
        assert "baseline:" in out
        assert "held-out RMSE:" in out

        assert main(["artifacts", str(tmp_path / "registry")]) == 0
        out = capsys.readouterr().out
        assert "v0001" in out
        assert "ok" in out

    def test_loop_resume_flag(self, tmp_path, seed_setup, capsys):
        assert main(self._loop_args(tmp_path, seed_setup)) == 0
        capsys.readouterr()
        assert main(self._loop_args(tmp_path, seed_setup, "--resume")) == 0
        out = capsys.readouterr().out
        assert "resuming after round 1" in out

    def test_artifacts_flags_corrupt_blob(self, tmp_path, seed_setup, capsys):
        assert main(self._loop_args(tmp_path, seed_setup)) == 0
        capsys.readouterr()
        registry = ModelRegistry(tmp_path / "registry")
        blob_dir = registry.versions()[0].path / "blobs"
        blob = next(blob_dir.glob("*.npz"))
        blob.write_bytes(b"corrupt")
        assert main(["artifacts", str(tmp_path / "registry")]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_artifacts_on_bare_artifact_dir(self, tmp_path, seed_setup, capsys):
        assert main(self._loop_args(tmp_path, seed_setup)) == 0
        capsys.readouterr()
        registry = ModelRegistry(tmp_path / "registry")
        artifact = registry.versions()[0].path
        assert main(["artifacts", str(artifact)]) == 0
        assert "single artifact" in capsys.readouterr().out

    def test_serve_registry_detection(self, tmp_path, seed_setup):
        """`repro serve --model <registry>` resolves the current version."""
        assert main(self._loop_args(tmp_path, seed_setup)) == 0
        from repro.cli import build_parser, _cmd_serve  # noqa: F401 - smoke import

        assert ModelRegistry.is_registry(tmp_path / "registry")
