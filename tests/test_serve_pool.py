"""Tests for the pre-fork serving worker pool (``repro.serve.pool``).

The pool's contract extends the single-process serving contract across
processes: every worker serves **bit-identical** predictions for the
same artifact, a dead worker is respawned without surfacing a 5xx to
clients, a fleet-wide hot-swap never exposes a torn generation (each
response names exactly one published artifact and matches its offline
predictions), and a rolling restart drops zero in-flight requests.

Fault injection follows the ``WorkerHooks`` crash pattern from
``tests/test_parallel_dse.py``: ``os._exit`` inside fork-inherited
hooks, or a hard ``SIGKILL`` from the parent mid-request.
"""

import os
import signal
import threading
import time

import pytest

from repro.designspace import build_design_space
from repro.dse import EvaluationPipeline
from repro.errors import ServeError
from repro.kernels import get_kernel
from repro.serve import (
    ModelRegistry,
    PoolHooks,
    PredictorService,
    ServeClient,
    WorkerPool,
    load_artifact,
)
from tests.test_pipeline import make_predictor, sample_points

KERNEL = "fir"


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    """A content-addressed registry with two published artifacts."""
    root = tmp_path_factory.mktemp("pool-registry")
    registry = ModelRegistry(root)
    registry.publish(make_predictor(seed=0))
    registry.publish(make_predictor(seed=7), activate=False)
    return registry


@pytest.fixture(scope="module")
def versions(registry):
    v1, v2 = registry.versions()
    return v1, v2


def pool_factory(registry, **service_kwargs):
    """Fork-inheritable factory: each worker loads from the registry."""
    root = str(registry.root)

    def factory():
        reg = ModelRegistry(root)
        current = reg.current()
        predictor = load_artifact(current.path)
        return PredictorService(
            predictor,
            batch_size=4,
            max_delay_seconds=0.002,
            model_info=current.payload(),
            registry=reg,
            **service_kwargs,
        )

    return factory


def offline_predictions(version, points):
    """Ground truth: the artifact's in-process pipeline output."""
    return EvaluationPipeline(load_artifact(version.path), batch_size=4).predict_batch(
        KERNEL, points
    )


@pytest.fixture()
def points():
    return sample_points(KERNEL, 6, seed=3)


class TestWorkerPool:
    def test_requires_at_least_one_worker(self, registry):
        with pytest.raises(ServeError):
            WorkerPool(pool_factory(registry), workers=0)

    def test_predictions_bit_identical_across_workers(
        self, registry, versions, points
    ):
        registry.set_current(versions[0].version)
        expected = offline_predictions(versions[0], points)
        with WorkerPool(pool_factory(registry), workers=2) as pool:
            client = ServeClient(pool.url, timeout=30.0, retries=2)
            # Enough single-point requests that both workers answer some.
            for _ in range(4):
                served, info = client.predict_with_model(KERNEL, points)
                assert served == expected
                assert info["sha256"] == versions[0].sha256
            assert pool.worker_count() == 2

    def test_kill_worker_mid_request_retries_cleanly(self, registry, versions):
        """SIGKILL a worker while it is computing: the client's bounded
        retry resolves the request (no hang, no 5xx), and the pool
        respawns back to full strength."""
        registry.set_current(versions[0].version)
        point = build_design_space(get_kernel(KERNEL)).default_point()
        expected = offline_predictions(versions[0], [point])
        # Slow dispatch so the victim is reliably mid-request when shot.
        factory = pool_factory(registry, dispatch_overhead_seconds=0.4)
        with WorkerPool(factory, workers=2) as pool:
            client = ServeClient(
                pool.url, timeout=30.0, retries=3, backoff_seconds=0.05
            )
            results, errors = [], []

            def request():
                try:
                    results.append(client.predict(KERNEL, [point]))
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=request) for _ in range(4)]
            for thread in threads:
                thread.start()
            time.sleep(0.15)  # let requests reach the slow dispatch
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, f"requests failed: {errors!r}"
            assert all(result == expected for result in results)
            deadline = time.monotonic() + 30.0
            while pool.worker_count() < 2 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.worker_count() == 2
            assert pool.respawns >= 1

    def test_worker_crash_at_startup_is_respawned(self, registry, versions):
        """WorkerHooks-style fault injection: worker 0 exits before its
        ready handshake; the pool still reaches full strength."""
        registry.set_current(versions[0].version)

        def die_if_first(worker_id):
            if worker_id == 0:
                os._exit(13)

        hooks = PoolHooks(on_worker_start=die_if_first)
        with WorkerPool(
            pool_factory(registry), workers=2, hooks=hooks
        ) as pool:
            assert pool.worker_count() == 2
            assert pool.respawns >= 1
            health = ServeClient(pool.url, timeout=30.0, retries=2).healthz()
            assert health["status"] == "ok"

    @pytest.mark.slow
    def test_cross_worker_hot_swap_consistency_under_load(
        self, registry, versions, points
    ):
        """During a reload under load, every response names one of the
        two published artifacts and bit-matches that artifact's offline
        predictions — no torn generation, fleet-wide."""
        v1, v2 = versions
        registry.set_current(v1.version)
        expected = {
            v1.sha256: offline_predictions(v1, points),
            v2.sha256: offline_predictions(v2, points),
        }
        with WorkerPool(pool_factory(registry), workers=2) as pool:
            client = ServeClient(pool.url, timeout=30.0, retries=2)
            stop = threading.Event()
            observed, errors = [], []

            def load():
                while not stop.is_set():
                    try:
                        served, info = client.predict_with_model(KERNEL, points)
                        observed.append((info["sha256"], served))
                    except Exception as exc:
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=load) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                time.sleep(0.3)
                registry.set_current(v2.version)
                reload_result = client.reload_model()
                assert reload_result["swapped"] is True
                # Let the broadcast land and both workers converge.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    shas = {
                        client.model()["model"]["sha256"] for _ in range(6)
                    }
                    if shas == {v2.sha256}:
                        break
                    time.sleep(0.1)
                else:
                    pytest.fail("fleet did not converge on the new artifact")
                time.sleep(0.3)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=60)
            assert not errors, f"load thread failed: {errors!r}"
            assert observed
            shas_seen = {sha for sha, _ in observed}
            assert shas_seen <= {v1.sha256, v2.sha256}
            assert v2.sha256 in shas_seen
            for sha, served in observed:
                assert served == expected[sha]

    @pytest.mark.slow
    def test_rolling_restart_under_load_drops_nothing(
        self, registry, versions, points
    ):
        registry.set_current(versions[0].version)
        expected = offline_predictions(versions[0], points)
        with WorkerPool(pool_factory(registry), workers=2) as pool:
            old_pids = set(pool.worker_pids())
            client = ServeClient(pool.url, timeout=30.0)  # no retries:
            # every in-flight request must succeed on the first try.
            stop = threading.Event()
            served_count, errors = [0], []

            def load():
                while not stop.is_set():
                    try:
                        assert client.predict(KERNEL, points) == expected
                        served_count[0] += 1
                    except Exception as exc:
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=load) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                pool.rolling_restart(timeout_seconds=60.0)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=60)
            assert not errors, f"dropped request during restart: {errors!r}"
            assert served_count[0] > 0
            assert pool.worker_count() == 2
            assert not (set(pool.worker_pids()) & old_pids)

    def test_reload_all_converges_without_http(self, registry, versions):
        """The control-plane path: parent-broadcast reload (no client
        involvement) moves every worker to the registry current."""
        v1, v2 = versions
        registry.set_current(v1.version)
        with WorkerPool(pool_factory(registry), workers=2) as pool:
            client = ServeClient(pool.url, timeout=30.0, retries=2)
            registry.set_current(v2.version)
            pool.reload_all()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                shas = {client.model()["model"]["sha256"] for _ in range(6)}
                if shas == {v2.sha256}:
                    return
                time.sleep(0.1)
            pytest.fail("reload_all did not converge the fleet")

    def test_pool_stop_is_idempotent_and_clean(self, registry, versions):
        registry.set_current(versions[0].version)
        pool = WorkerPool(pool_factory(registry), workers=2).start()
        url = pool.url
        pool.stop()
        with pytest.raises(ServeError):
            ServeClient(url, timeout=2.0).healthz()
        pool.stop()  # second stop is a no-op, never raises
