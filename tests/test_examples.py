"""Smoke tests for the runnable examples (the cheap, training-free ones)."""

import subprocess
import sys
from pathlib import Path


_EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Program graph" in out
        assert "Design space" in out
        assert "latency=" in out

    def test_explore_design_space(self):
        out = run_example("explore_design_space.py")
        assert "bottleneck" in out
        assert "Pareto frontier" in out
        # The directed explorer should report a best design.
        assert "best latency" in out

    def test_all_examples_compile(self):
        """Every example must at least be valid Python."""
        for path in sorted(_EXAMPLES.glob("*.py")):
            source = path.read_text()
            compile(source, str(path), "exec")
