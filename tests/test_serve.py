"""Tests for the serving subsystem: micro-batcher, service, HTTP API.

The serving contract mirrors the pipeline's: anything a client reads
off the wire must be **bit-identical** to what an in-process
:class:`EvaluationPipeline` returns for the same predictor — the
micro-batcher may regroup requests into any batch composition, and the
JSON transport must round-trip every float exactly.
"""

import json
import random
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.dse import EvaluationPipeline
from repro.errors import BacklogFullError, DesignSpaceError, ServeError
from repro.model.predictor import Prediction
from repro.nn.tensor import set_default_dtype
from repro.serve import (
    MicroBatcher,
    PredictorService,
    ServeClient,
    ServeClientError,
    ServeMetrics,
    start_server,
)

from tests.test_pipeline import make_predictor, sample_points


@pytest.fixture(scope="module")
def predictor():
    # Module-scoped float64 stack (built under the suite fixture).
    return make_predictor()


# ---------------------------------------------------------------------------
# micro-batcher


def constant_prediction():
    return Prediction(valid=True, valid_prob=0.75, objectives=None)


class TestMicroBatcher:
    def test_flushes_full_batch_in_one_call(self):
        calls = []

        def predict(kernel, points, valid_threshold, objectives_for):
            calls.append((kernel, len(points)))
            return [constant_prediction() for _ in points]

        # The deadline is far away, so nothing can flush until the group
        # reaches batch_size — at which point all four ride one call.
        with MicroBatcher(predict, batch_size=4, max_delay_seconds=60.0) as mb:
            futures = [mb.submit("fir", {"a": i}) for i in range(4)]
            for f in futures:
                assert f.result(timeout=30).valid_prob == 0.75
        assert calls == [("fir", 4)]

    def test_deadline_flushes_partial_batch(self):
        calls = []

        def predict(kernel, points, valid_threshold, objectives_for):
            calls.append(len(points))
            return [constant_prediction() for _ in points]

        with MicroBatcher(predict, batch_size=64, max_delay_seconds=0.02) as mb:
            futures = [mb.submit("fir", {"a": i}) for i in range(3)]
            for f in futures:
                f.result(timeout=30)
        # Nowhere near 64 requests: the deadline, not the size, flushed.
        assert sum(calls) == 3

    def test_groups_never_mix_thresholds(self):
        calls = []

        def predict(kernel, points, valid_threshold, objectives_for):
            calls.append((kernel, valid_threshold, len(points)))
            return [constant_prediction() for _ in points]

        with MicroBatcher(predict, batch_size=8, max_delay_seconds=0.01) as mb:
            a = [mb.submit("fir", {"a": i}, valid_threshold=0.5) for i in range(2)]
            b = [mb.submit("fir", {"a": i}, valid_threshold=0.9) for i in range(2)]
            c = [mb.submit("aes", {"a": 0}, valid_threshold=0.5)]
            for f in a + b + c:
                f.result(timeout=30)
        keys = {(kernel, threshold) for kernel, threshold, _ in calls}
        assert keys == {("fir", 0.5), ("fir", 0.9), ("aes", 0.5)}

    def test_backlog_rejects_excess_load(self):
        started = threading.Event()
        gate = threading.Event()
        metrics = ServeMetrics()

        def predict(kernel, points, valid_threshold, objectives_for):
            started.set()
            gate.wait(timeout=30)
            return [constant_prediction() for _ in points]

        mb = MicroBatcher(
            predict, batch_size=2, max_delay_seconds=0.0, max_pending=2,
            metrics=metrics,
        )
        try:
            first = mb.submit("fir", {"a": 0})
            assert started.wait(timeout=30)  # worker busy, queue now empty
            queued = [mb.submit("fir", {"a": i}) for i in (1, 2)]
            with pytest.raises(BacklogFullError):
                mb.submit("fir", {"a": 3})
            assert metrics.snapshot()["rejected_requests"] == 1
            gate.set()
            for f in [first] + queued:
                f.result(timeout=30)
        finally:
            gate.set()
            mb.close()

    def test_close_drains_queued_work(self):
        done = []

        def predict(kernel, points, valid_threshold, objectives_for):
            time.sleep(0.01)
            done.append(len(points))
            return [constant_prediction() for _ in points]

        mb = MicroBatcher(predict, batch_size=4, max_delay_seconds=60.0)
        futures = [mb.submit("fir", {"a": i}) for i in range(3)]
        mb.close(drain=True)
        for f in futures:
            assert f.result(timeout=0).valid
        with pytest.raises(ServeError):
            mb.submit("fir", {"a": 9})

    def test_close_without_drain_fails_queued_requests(self):
        started = threading.Event()
        gate = threading.Event()

        def predict(kernel, points, valid_threshold, objectives_for):
            started.set()
            gate.wait(timeout=30)
            return [constant_prediction() for _ in points]

        mb = MicroBatcher(predict, batch_size=2, max_delay_seconds=0.0)
        first = mb.submit("fir", {"a": 0})
        assert started.wait(timeout=30)
        queued = [mb.submit("fir", {"a": i}) for i in (1, 2)]
        closer = threading.Thread(target=mb.close, kwargs={"drain": False})
        closer.start()
        gate.set()
        closer.join(timeout=30)
        assert first.result(timeout=30).valid  # in-flight work still lands
        for f in queued:
            with pytest.raises(ServeError):
                f.result(timeout=30)

    def test_predict_exception_reaches_caller_and_worker_survives(self):
        boom = [True]

        def predict(kernel, points, valid_threshold, objectives_for):
            if boom[0]:
                boom[0] = False
                raise ValueError("injected")
            return [constant_prediction() for _ in points]

        with MicroBatcher(predict, batch_size=1, max_delay_seconds=0.0) as mb:
            failed = mb.submit("fir", {"a": 0})
            with pytest.raises(ValueError, match="injected"):
                failed.result(timeout=30)
            assert mb.submit("fir", {"a": 1}).result(timeout=30).valid

    def test_rejects_bad_configuration(self):
        with pytest.raises(ServeError):
            MicroBatcher(lambda *a, **k: [], batch_size=0)
        with pytest.raises(ServeError):
            MicroBatcher(lambda *a, **k: [], batch_size=8, max_pending=4)


# ---------------------------------------------------------------------------
# pipeline thread safety (satellite: locks on EncodingCache + pipeline)


class TestPipelineThreadSafety:
    def test_hammer_bit_identical_to_serial(self, predictor):
        """8 threads × overlapping batches == the serial answers, exactly."""
        kernel = "fir"
        points = sample_points(kernel, 12, seed=5)
        serial = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        expected = serial.predict_batch(kernel, points)

        pipeline = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        results = [None] * 8
        errors = []

        def worker(idx):
            # Each thread walks the shared points from its own offset, in
            # its own batch sizes — maximum template/cache contention.
            rng = random.Random(idx)
            try:
                mine = points[idx % 3:] + points[:idx % 3]
                out = []
                start = 0
                while start < len(mine):
                    size = rng.randint(1, 4)
                    out.extend(pipeline.predict_batch(kernel, mine[start:start + size]))
                    start += size
                results[idx] = (mine, out)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        by_key = {id(p): e for p, e in zip(points, expected)}
        for item in results:
            assert item is not None
            mine, out = item
            assert out == [by_key[id(p)] for p in mine]

    def test_encoding_cache_single_instance_under_races(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=2)
        got = []

        def fetch():
            got.append(pipeline.encodings.get("gesummv"))

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(e) for e in got}) == 1


# ---------------------------------------------------------------------------
# service layer


class TestPredictorService:
    def test_predict_bit_identical_to_pipeline(self, predictor):
        points = sample_points("gemm-ncubed", 4, seed=2)
        reference = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        expected = reference.predict_batch("gemm-ncubed", points)
        with PredictorService(predictor, batch_size=4) as service:
            got = service.predict("gemm-ncubed", points)
        assert got == expected

    def test_partial_points_complete_to_defaults(self, predictor):
        with PredictorService(predictor, batch_size=2) as service:
            space = service.space("fir")
            full = space.default_point()
            knob = next(iter(full))
            assert service.complete_point("fir", {knob: full[knob]}) == full
            assert service.predict("fir", [{}]) == service.predict("fir", [full])

    def test_unknown_kernel_and_knob_raise(self, predictor):
        with PredictorService(predictor, batch_size=2) as service:
            with pytest.raises(ServeError, match="unknown kernel"):
                service.predict("nope", [{}])
            with pytest.raises(DesignSpaceError, match="unknown knob"):
                service.predict("fir", [{"__NOT_A_KNOB__": 1}])
            with pytest.raises(ServeError, match="objectives_for"):
                service.predict("fir", [{}], objectives_for="sometimes")

    def test_closed_service_refuses_work(self, predictor):
        service = PredictorService(predictor, batch_size=2)
        service.close()
        with pytest.raises(ServeError):
            service.predict("fir", [{}])
        with pytest.raises(ServeError):
            service.dse_top("fir")


# ---------------------------------------------------------------------------
# HTTP API


@pytest.fixture(scope="module")
def server(predictor):
    service = PredictorService(predictor, batch_size=4, max_delay_seconds=0.002)
    http = start_server(service)
    yield http
    http.stop()


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url)


class TestHTTPServer:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert "fir" in health["kernels"]

    def test_predictions_bit_identical_over_http(self, client, server, predictor):
        """The acceptance contract: wire == in-process, float for float."""
        points = sample_points("spmv-ellpack", 6, seed=9)
        reference = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        expected = reference.predict_batch("spmv-ellpack", points)
        got = client.predict("spmv-ellpack", points)
        assert got == expected
        # And through the single-point endpoint shape too.
        assert client.predict_one("spmv-ellpack", points[0]) == expected[0]

    def test_threshold_and_cascade_forwarded(self, client, server, predictor):
        points = sample_points("fir", 3, seed=4)
        reference = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        expected = reference.predict_batch(
            "fir", points, valid_threshold=0.99, objectives_for="valid"
        )
        got = client.predict(
            "fir", points, valid_threshold=0.99, objectives_for="valid"
        )
        assert got == expected

    def test_unknown_kernel_is_404(self, client):
        with pytest.raises(ServeClientError) as info:
            client.predict("nope", [{}])
        assert info.value.status == 404
        assert info.value.error_type == "unknown_kernel"

    def test_bad_knob_is_400(self, client):
        with pytest.raises(ServeClientError) as info:
            client.predict("fir", [{"__NOT_A_KNOB__": 2}])
        assert info.value.status == 400
        assert info.value.error_type == "invalid_design_point"

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/predict",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        assert json.loads(info.value.read())["error"]["type"] == "bad_json"

    def test_point_and_points_are_exclusive(self, server):
        body = json.dumps(
            {"kernel": "fir", "point": {}, "points": [{}]}
        ).encode()
        request = urllib.request.Request(
            server.url + "/v1/predict", data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeClientError) as info:
            client._request("GET", "/nope")
        assert info.value.status == 404

    def test_metrics_counts_and_fill(self, client):
        client.predict("fir", sample_points("fir", 2, seed=1))
        metrics = client.metrics()
        assert metrics["requests"]["/v1/predict"] >= 1
        assert metrics["batches"] >= 1
        assert metrics["mean_batch_fill"] >= 1.0
        assert "p50_ms" in metrics["latency"]["/v1/predict"]
        assert metrics["pipeline"]["points"] >= 2
        histogram = metrics["batch_fill_histogram"]
        assert sum(histogram.values()) == metrics["batches"]

    def test_metrics_include_process_observability(self, client):
        client.predict("fir", sample_points("fir", 2, seed=2))
        obs_section = client.metrics()["obs"]
        # The pipeline's process-wide instruments ride along with the
        # per-server request stats.
        assert obs_section["counters"]["pipeline.points"] >= 2
        assert obs_section["histograms"]["pipeline.batch_fill"]["count"] >= 1

    def test_trace_endpoint_serves_schema_valid_trace(self, client, server):
        from repro import obs
        from repro.obs import validate_trace

        payload = client._request("GET", "/v1/trace")
        assert payload["enabled"] is False
        assert payload["spans"] == []
        obs.enable()
        try:
            client.predict("fir", sample_points("fir", 1, seed=3))
            traced = client._request("GET", "/v1/trace")
        finally:
            obs.disable()
            obs.reset()
        assert traced["enabled"] is True
        validate_trace({k: v for k, v in traced.items() if k != "enabled"})
        by_name = {}
        for entry in traced["spans"]:
            by_name.setdefault(entry["name"], []).append(entry)
        requests = by_name["serve.request"]
        assert any(s["attrs"].get("endpoint") == "/v1/predict" for s in requests)
        assert all(s["attrs"].get("status") == 200 for s in requests)
        # Pipeline work nests under the request that triggered it... on
        # the batcher thread it roots itself instead; either way the
        # batch spans are present.
        assert "pipeline.predict_batch" in by_name

    def test_dse_top_payload_schema(self, client):
        payload = client.dse_top("fir", top=3, time_limit=3.0)
        assert payload["schema_version"] == 1
        assert payload["kernel"] == "fir"
        assert payload["explored"] >= len(payload["top"]) >= 1
        ranks = [entry["rank"] for entry in payload["top"]]
        assert ranks == list(range(1, len(ranks) + 1))
        best = payload["top"][0]
        assert set(best) == {"rank", "point", "prediction"}
        assert best["prediction"]["valid"] in (True, False)

    def test_stopped_server_refuses_connections(self, predictor):
        service = PredictorService(predictor, batch_size=2)
        http = start_server(service)
        url = http.url
        http.stop()
        with pytest.raises(ServeError):
            ServeClient(url, timeout=2).healthz()


# ---------------------------------------------------------------------------
# acceptance load test: micro-batching vs batch-size-1 serving


@pytest.mark.slow
class TestMicroBatchingThroughput:
    """8 concurrent clients, fixed per-dispatch latency on the backend.

    Every inference dispatch pays a fixed overhead before the per-point
    compute (on real deployments: accelerator/RPC dispatch; here a
    deterministic ``sleep`` so the test is hardware-independent).
    Micro-batching amortizes that fixed cost across the whole batch —
    batch-size-1 serving pays it per request — so coalescing must win
    by well over 2x while returning bit-identical predictions.
    """

    DISPATCH_SECONDS = 0.2
    CLIENTS = 8
    REQUESTS_PER_CLIENT = 8

    def _serve_throughput(self, predictor, batch_size, max_delay_seconds, points):
        service = PredictorService(
            predictor, batch_size=batch_size, max_delay_seconds=max_delay_seconds
        )
        pipeline = service.pipeline

        dispatches = [0]

        def dispatch(kernel, batch, valid_threshold, objectives_for):
            dispatches[0] += 1
            time.sleep(self.DISPATCH_SECONDS)
            return pipeline.predict_batch(
                kernel, batch,
                valid_threshold=valid_threshold, objectives_for=objectives_for,
            )

        service.batcher.close()
        service.batcher = MicroBatcher(
            dispatch, batch_size=batch_size,
            max_delay_seconds=max_delay_seconds, metrics=service.metrics,
        )
        server = start_server(service)
        client = ServeClient(server.url)
        # Warm up outside the timed window: compile the batch template
        # for every chunk size a flush can produce (cache stays cold —
        # the warm-up points are disjoint from the measured ones).
        warm = sample_points("fir", batch_size, seed=99)
        for size in range(1, batch_size + 1):
            pipeline.predict_batch("fir", warm[:size])
        client.predict("fir", points[-2:])
        dispatches[0] = 0  # count backend dispatches in the measured window only

        errors = []
        results = {}

        def worker(idx):
            mine = points[idx * self.REQUESTS_PER_CLIENT:
                          (idx + 1) * self.REQUESTS_PER_CLIENT]
            try:
                results[idx] = [client.predict_one("fir", p) for p in mine]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.CLIENTS)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        fill = service.metrics.mean_batch_fill()
        server.stop()
        assert not errors
        total = self.CLIENTS * self.REQUESTS_PER_CLIENT
        flat = [p for i in range(self.CLIENTS) for p in results[i]]
        return total / elapsed, fill, flat, dispatches[0]

    def test_micro_batching_at_least_2x_batch_size_1(self):
        previous = np.dtype(np.float64)
        set_default_dtype(np.float32)  # the serving-default dtype
        try:
            predictor = make_predictor()
            points = sample_points(
                "fir", self.CLIENTS * self.REQUESTS_PER_CLIENT + 2, seed=13
            )
            reference = EvaluationPipeline(predictor, batch_size=8, engine="compiled")
            expected = reference.predict_batch("fir", points[:-2])

            # Judged on backend dispatch counts, not wall clock: every
            # dispatch pays the same fixed modelled cost, so "2x
            # throughput" is exactly "half the dispatches", and counts
            # stay deterministic on arbitrarily slow shared runners
            # (wall clock is still measured and printed for context).
            # A thread-scheduling fluke could leave one run barely
            # coalesced, so the pair is re-measured a few times and the
            # best attempt judged.  Bit-identity is asserted on every
            # attempt — it may never flake.
            for attempt in range(3):
                single_rps, single_fill, single_out, single_n = self._serve_throughput(
                    predictor, batch_size=1, max_delay_seconds=0.0, points=points
                )
                batched_rps, batched_fill, batched_out, batched_n = (
                    self._serve_throughput(
                        predictor, batch_size=8, max_delay_seconds=0.1, points=points
                    )
                )
                assert single_out == expected
                assert batched_out == expected
                if 2 * batched_n <= single_n:
                    break
        finally:
            set_default_dtype(previous)

        print(
            f"\nserve load test: batch-size-1 {single_rps:.1f} req/s "
            f"({single_n} dispatches), micro-batched {batched_rps:.1f} req/s "
            f"({batched_n} dispatches, fill {batched_fill:.2f}, "
            f"{self.CLIENTS} clients, attempt {attempt + 1})"
        )
        # Coalescing never changes values — even under full concurrency.
        assert single_fill == 1.0
        assert batched_fill > 1.0
        # Batch-size-1 serving pays the fixed cost once per request …
        assert single_n == self.CLIENTS * self.REQUESTS_PER_CLIENT
        # … micro-batching amortizes it at least 2x better.
        assert 2 * batched_n <= single_n, (
            f"micro-batching used {batched_n} dispatches vs batch-size-1's "
            f"{single_n} (fill {batched_fill:.2f}) — amortization under 2x"
        )


# ---------------------------------------------------------------------------
# fused engine through the serving stack


class TestFusedServing:
    """``engine="fused"`` behind the service: responses must be
    bit-consistent within one engine version — identical requests get
    identical floats, over the wire and across calls."""

    def test_fused_service_bit_consistent(self, predictor):
        points = sample_points("fir", 4, seed=17)
        with PredictorService(predictor, batch_size=4, engine="fused") as service:
            first = service.predict("fir", points)
            second = service.predict("fir", points)
        assert second == first
        assert service.pipeline.stats.engine == "fused"

    def test_fused_http_responses_bit_consistent(self, predictor):
        from repro.nn.lazy import predictions_equivalent

        points = sample_points("spmv-ellpack", 4, seed=18)
        service = PredictorService(
            predictor, batch_size=4, max_delay_seconds=0.002, engine="fused"
        )
        http = start_server(service)
        try:
            client = ServeClient(http.url)
            first = client.predict("spmv-ellpack", points)
            second = client.predict("spmv-ellpack", points)
            # Wire round-trips are float-exact and the engine is
            # deterministic: byte-for-byte the same answer.
            assert second == first
            assert client.predict_one("spmv-ellpack", points[0]) == first[0]
            # And the fused answers are tolerance-equivalent to eager.
            eager = [predictor.predict("spmv-ellpack", p) for p in points]
            assert predictions_equivalent(first, eager, dtype=np.float64) is None
        finally:
            http.stop()


# ---------------------------------------------------------------------------
# model identity + zero-downtime hot swap


class TestModelIdentity:
    def test_model_endpoint_and_response_stamp(self, predictor):
        info = {"version": "v0007", "sha256": "cafe" * 16, "path": "reg/versions/v0007"}
        service = PredictorService(predictor, batch_size=4, model_info=info)
        http = start_server(service)
        try:
            client = ServeClient(http.url)
            model = client.model()
            assert model["model"]["version"] == "v0007"
            assert model["model"]["sha256"] == info["sha256"]
            assert model["swaps"] == 0
            predictions, stamped = client.predict_with_model(
                "fir", sample_points("fir", 2, seed=5)
            )
            assert len(predictions) == 2
            assert stamped["sha256"] == info["sha256"]
            assert client.healthz()["model"]["version"] == "v0007"
            top = client.dse_top("fir", top=2, time_limit=5.0)
            assert top["model"]["sha256"] == info["sha256"]
        finally:
            http.stop()

    def test_anonymous_service_reports_null_identity(self, predictor):
        with PredictorService(predictor, batch_size=2) as service:
            assert service.model_info == {"version": None, "sha256": None, "path": None}

    def test_reload_without_registry_is_a_client_error(self, predictor):
        service = PredictorService(predictor, batch_size=2)
        http = start_server(service)
        try:
            client = ServeClient(http.url)
            with pytest.raises(ServeClientError) as err:
                client.reload_model()
            assert err.value.status == 400
            assert "registry" in str(err.value)
        finally:
            http.stop()


class TestHotSwap:
    """The acceptance contract: a hot swap under concurrent load drops
    nothing, and every response is bit-identical to a fresh offline
    prediction from the artifact version its reported hash names."""

    def test_swap_under_load_zero_drops_bit_identical(self, tmp_path):
        from repro.serve import ModelRegistry
        from repro.serve.registry import load_artifact

        registry = ModelRegistry(tmp_path / "reg")
        v1 = registry.publish(make_predictor(seed=0), created=1.0)
        points = sample_points("fir", 10, seed=3)

        service = PredictorService(
            load_artifact(v1.path),
            batch_size=4,
            max_delay_seconds=0.001,
            engine="compiled",
            model_info=v1.payload(),
            registry=registry,
        )
        http = start_server(service)
        client = ServeClient(http.url)

        threads_n = 8
        results, errors = [], []
        done = threading.Event()
        lock = threading.Lock()

        def count(sha):
            with lock:
                return sum(1 for _, _, got in results if got == sha)

        def worker(worker_index):
            i = 0
            # Keep traffic flowing until the main thread has seen enough
            # responses from BOTH versions (so the load provably spans
            # the swap), then drain.
            while not done.is_set():
                point_index = (worker_index + i) % len(points)
                i += 1
                try:
                    predictions, info = client.predict_with_model(
                        "fir", [points[point_index]]
                    )
                    with lock:
                        results.append((point_index, predictions[0], info["sha256"]))
                except Exception as exc:  # noqa: BLE001 - the assertion
                    with lock:
                        errors.append(repr(exc))
                    return

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(threads_n)
        ]
        try:
            for thread in threads:
                thread.start()
            # Let a chunk of traffic land on v1, then swap mid-stream.
            while count(v1.sha256) < 100 and not errors:
                time.sleep(0.001)
            v2 = registry.publish(make_predictor(seed=1), created=2.0)
            info, swapped = service.reload()
            assert swapped and info["sha256"] == v2.sha256
            while count(v2.sha256) < 100 and not errors:
                time.sleep(0.001)
            done.set()
            for thread in threads:
                thread.join()
        finally:
            done.set()
            http.stop()

        # Zero dropped / error responses across the swap.
        assert errors == []
        assert len(results) >= 200
        seen_shas = {sha for _, _, sha in results}
        assert seen_shas == {v1.sha256, v2.sha256}, "load must span the swap"

        # Bit-identity: group responses by reported hash and compare to a
        # fresh offline prediction from that exact artifact version.
        by_sha = {v.sha256: v for v in registry.versions()}
        for sha in seen_shas:
            offline = EvaluationPipeline(
                load_artifact(by_sha[sha].path), batch_size=4, engine="compiled"
            )
            expected = offline.predict_batch("fir", points)
            for point_index, prediction, got_sha in results:
                if got_sha == sha:
                    assert prediction == expected[point_index]

    def test_swap_drains_old_generation(self, predictor):
        """In-flight requests finish on the generation they entered."""
        service = PredictorService(
            predictor, batch_size=2, model_info={"version": "v1", "sha256": "a"}
        )
        try:
            points = sample_points("fir", 4, seed=11)
            results = {}

            def requester():
                results["predictions"], results["info"] = service.predict_versioned(
                    "fir", points
                )

            thread = threading.Thread(target=requester)
            thread.start()
            service.swap(make_predictor(seed=1), {"version": "v2", "sha256": "b"})
            thread.join()
            # The in-flight request reports whichever generation it
            # entered — never a mix — and the service now serves v2.
            assert results["info"]["version"] in ("v1", "v2")
            assert service.model_info["version"] == "v2"
            assert service.swaps == 1
            predictions, info = service.predict_versioned("fir", points)
            assert info["version"] == "v2"
        finally:
            service.close()

    def test_swap_on_closed_service_raises(self, predictor):
        service = PredictorService(predictor, batch_size=2)
        service.close()
        with pytest.raises(ServeError):
            service.swap(predictor)
