"""Tests for the serving subsystem: micro-batcher, service, HTTP API.

The serving contract mirrors the pipeline's: anything a client reads
off the wire must be **bit-identical** to what an in-process
:class:`EvaluationPipeline` returns for the same predictor — the
micro-batcher may regroup requests into any batch composition, and the
JSON transport must round-trip every float exactly.
"""

import json
import random
import socket
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.dse import EvaluationPipeline
from repro.errors import (
    BacklogFullError,
    DeadlineExceededError,
    DesignSpaceError,
    ServeError,
)
from repro.model.predictor import Prediction
from repro.nn.tensor import set_default_dtype
from repro.serve import (
    MicroBatcher,
    PredictorService,
    ServeClient,
    ServeClientError,
    ServeMetrics,
    start_server,
)

from tests.test_pipeline import make_predictor, sample_points


@pytest.fixture(scope="module")
def predictor():
    # Module-scoped float64 stack (built under the suite fixture).
    return make_predictor()


# ---------------------------------------------------------------------------
# micro-batcher


def constant_prediction():
    return Prediction(valid=True, valid_prob=0.75, objectives=None)


class TestMicroBatcher:
    def test_flushes_full_batch_in_one_call(self):
        calls = []

        def predict(kernel, points, valid_threshold, objectives_for):
            calls.append((kernel, len(points)))
            return [constant_prediction() for _ in points]

        # The deadline is far away, so nothing can flush until the group
        # reaches batch_size — at which point all four ride one call.
        with MicroBatcher(predict, batch_size=4, max_delay_seconds=60.0) as mb:
            futures = [mb.submit("fir", {"a": i}) for i in range(4)]
            for f in futures:
                assert f.result(timeout=30).valid_prob == 0.75
        assert calls == [("fir", 4)]

    def test_deadline_flushes_partial_batch(self):
        calls = []

        def predict(kernel, points, valid_threshold, objectives_for):
            calls.append(len(points))
            return [constant_prediction() for _ in points]

        with MicroBatcher(predict, batch_size=64, max_delay_seconds=0.02) as mb:
            futures = [mb.submit("fir", {"a": i}) for i in range(3)]
            for f in futures:
                f.result(timeout=30)
        # Nowhere near 64 requests: the deadline, not the size, flushed.
        assert sum(calls) == 3

    def test_groups_never_mix_thresholds(self):
        calls = []

        def predict(kernel, points, valid_threshold, objectives_for):
            calls.append((kernel, valid_threshold, len(points)))
            return [constant_prediction() for _ in points]

        with MicroBatcher(predict, batch_size=8, max_delay_seconds=0.01) as mb:
            a = [mb.submit("fir", {"a": i}, valid_threshold=0.5) for i in range(2)]
            b = [mb.submit("fir", {"a": i}, valid_threshold=0.9) for i in range(2)]
            c = [mb.submit("aes", {"a": 0}, valid_threshold=0.5)]
            for f in a + b + c:
                f.result(timeout=30)
        keys = {(kernel, threshold) for kernel, threshold, _ in calls}
        assert keys == {("fir", 0.5), ("fir", 0.9), ("aes", 0.5)}

    def test_backlog_rejects_excess_load(self):
        started = threading.Event()
        gate = threading.Event()
        metrics = ServeMetrics()

        def predict(kernel, points, valid_threshold, objectives_for):
            started.set()
            gate.wait(timeout=30)
            return [constant_prediction() for _ in points]

        mb = MicroBatcher(
            predict, batch_size=2, max_delay_seconds=0.0, max_pending=2,
            metrics=metrics,
        )
        try:
            first = mb.submit("fir", {"a": 0})
            assert started.wait(timeout=30)  # worker busy, queue now empty
            queued = [mb.submit("fir", {"a": i}) for i in (1, 2)]
            with pytest.raises(BacklogFullError):
                mb.submit("fir", {"a": 3})
            assert metrics.snapshot()["rejected_requests"] == 1
            gate.set()
            for f in [first] + queued:
                f.result(timeout=30)
        finally:
            gate.set()
            mb.close()

    def test_close_drains_queued_work(self):
        done = []

        def predict(kernel, points, valid_threshold, objectives_for):
            time.sleep(0.01)
            done.append(len(points))
            return [constant_prediction() for _ in points]

        mb = MicroBatcher(predict, batch_size=4, max_delay_seconds=60.0)
        futures = [mb.submit("fir", {"a": i}) for i in range(3)]
        mb.close(drain=True)
        for f in futures:
            assert f.result(timeout=0).valid
        with pytest.raises(ServeError):
            mb.submit("fir", {"a": 9})

    def test_close_without_drain_fails_queued_requests(self):
        started = threading.Event()
        gate = threading.Event()

        def predict(kernel, points, valid_threshold, objectives_for):
            started.set()
            gate.wait(timeout=30)
            return [constant_prediction() for _ in points]

        mb = MicroBatcher(predict, batch_size=2, max_delay_seconds=0.0)
        first = mb.submit("fir", {"a": 0})
        assert started.wait(timeout=30)
        queued = [mb.submit("fir", {"a": i}) for i in (1, 2)]
        closer = threading.Thread(target=mb.close, kwargs={"drain": False})
        closer.start()
        gate.set()
        closer.join(timeout=30)
        assert first.result(timeout=30).valid  # in-flight work still lands
        for f in queued:
            with pytest.raises(ServeError):
                f.result(timeout=30)

    def test_predict_exception_reaches_caller_and_worker_survives(self):
        boom = [True]

        def predict(kernel, points, valid_threshold, objectives_for):
            if boom[0]:
                boom[0] = False
                raise ValueError("injected")
            return [constant_prediction() for _ in points]

        with MicroBatcher(predict, batch_size=1, max_delay_seconds=0.0) as mb:
            failed = mb.submit("fir", {"a": 0})
            with pytest.raises(ValueError, match="injected"):
                failed.result(timeout=30)
            assert mb.submit("fir", {"a": 1}).result(timeout=30).valid

    def test_rejects_bad_configuration(self):
        with pytest.raises(ServeError):
            MicroBatcher(lambda *a, **k: [], batch_size=0)
        with pytest.raises(ServeError):
            MicroBatcher(lambda *a, **k: [], batch_size=8, max_pending=4)


# ---------------------------------------------------------------------------
# pipeline thread safety (satellite: locks on EncodingCache + pipeline)


class TestPipelineThreadSafety:
    def test_hammer_bit_identical_to_serial(self, predictor):
        """8 threads × overlapping batches == the serial answers, exactly."""
        kernel = "fir"
        points = sample_points(kernel, 12, seed=5)
        serial = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        expected = serial.predict_batch(kernel, points)

        pipeline = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        results = [None] * 8
        errors = []

        def worker(idx):
            # Each thread walks the shared points from its own offset, in
            # its own batch sizes — maximum template/cache contention.
            rng = random.Random(idx)
            try:
                mine = points[idx % 3:] + points[:idx % 3]
                out = []
                start = 0
                while start < len(mine):
                    size = rng.randint(1, 4)
                    out.extend(pipeline.predict_batch(kernel, mine[start:start + size]))
                    start += size
                results[idx] = (mine, out)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        by_key = {id(p): e for p, e in zip(points, expected)}
        for item in results:
            assert item is not None
            mine, out = item
            assert out == [by_key[id(p)] for p in mine]

    def test_encoding_cache_single_instance_under_races(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=2)
        got = []

        def fetch():
            got.append(pipeline.encodings.get("gesummv"))

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(e) for e in got}) == 1


# ---------------------------------------------------------------------------
# service layer


class TestPredictorService:
    def test_predict_bit_identical_to_pipeline(self, predictor):
        points = sample_points("gemm-ncubed", 4, seed=2)
        reference = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        expected = reference.predict_batch("gemm-ncubed", points)
        with PredictorService(predictor, batch_size=4) as service:
            got = service.predict("gemm-ncubed", points)
        assert got == expected

    def test_partial_points_complete_to_defaults(self, predictor):
        with PredictorService(predictor, batch_size=2) as service:
            space = service.space("fir")
            full = space.default_point()
            knob = next(iter(full))
            assert service.complete_point("fir", {knob: full[knob]}) == full
            assert service.predict("fir", [{}]) == service.predict("fir", [full])

    def test_unknown_kernel_and_knob_raise(self, predictor):
        with PredictorService(predictor, batch_size=2) as service:
            with pytest.raises(ServeError, match="unknown kernel"):
                service.predict("nope", [{}])
            with pytest.raises(DesignSpaceError, match="unknown knob"):
                service.predict("fir", [{"__NOT_A_KNOB__": 1}])
            with pytest.raises(ServeError, match="objectives_for"):
                service.predict("fir", [{}], objectives_for="sometimes")

    def test_closed_service_refuses_work(self, predictor):
        service = PredictorService(predictor, batch_size=2)
        service.close()
        with pytest.raises(ServeError):
            service.predict("fir", [{}])
        with pytest.raises(ServeError):
            service.dse_top("fir")


# ---------------------------------------------------------------------------
# HTTP API


@pytest.fixture(scope="module")
def server(predictor):
    service = PredictorService(predictor, batch_size=4, max_delay_seconds=0.002)
    http = start_server(service)
    yield http
    http.stop()


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url)


class TestHTTPServer:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert "fir" in health["kernels"]

    def test_predictions_bit_identical_over_http(self, client, server, predictor):
        """The acceptance contract: wire == in-process, float for float."""
        points = sample_points("spmv-ellpack", 6, seed=9)
        reference = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        expected = reference.predict_batch("spmv-ellpack", points)
        got = client.predict("spmv-ellpack", points)
        assert got == expected
        # And through the single-point endpoint shape too.
        assert client.predict_one("spmv-ellpack", points[0]) == expected[0]

    def test_threshold_and_cascade_forwarded(self, client, server, predictor):
        points = sample_points("fir", 3, seed=4)
        reference = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
        expected = reference.predict_batch(
            "fir", points, valid_threshold=0.99, objectives_for="valid"
        )
        got = client.predict(
            "fir", points, valid_threshold=0.99, objectives_for="valid"
        )
        assert got == expected

    def test_unknown_kernel_is_404(self, client):
        with pytest.raises(ServeClientError) as info:
            client.predict("nope", [{}])
        assert info.value.status == 404
        assert info.value.error_type == "unknown_kernel"

    def test_bad_knob_is_400(self, client):
        with pytest.raises(ServeClientError) as info:
            client.predict("fir", [{"__NOT_A_KNOB__": 2}])
        assert info.value.status == 400
        assert info.value.error_type == "invalid_design_point"

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/predict",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        assert json.loads(info.value.read())["error"]["type"] == "bad_json"

    def test_point_and_points_are_exclusive(self, server):
        body = json.dumps(
            {"kernel": "fir", "point": {}, "points": [{}]}
        ).encode()
        request = urllib.request.Request(
            server.url + "/v1/predict", data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeClientError) as info:
            client._request("GET", "/nope")
        assert info.value.status == 404

    def test_metrics_counts_and_fill(self, client):
        client.predict("fir", sample_points("fir", 2, seed=1))
        metrics = client.metrics()
        assert metrics["requests"]["/v1/predict"] >= 1
        assert metrics["batches"] >= 1
        assert metrics["mean_batch_fill"] >= 1.0
        assert "p50_ms" in metrics["latency"]["/v1/predict"]
        assert metrics["pipeline"]["points"] >= 2
        histogram = metrics["batch_fill_histogram"]
        assert sum(histogram.values()) == metrics["batches"]

    def test_metrics_include_process_observability(self, client):
        client.predict("fir", sample_points("fir", 2, seed=2))
        obs_section = client.metrics()["obs"]
        # The pipeline's process-wide instruments ride along with the
        # per-server request stats.
        assert obs_section["counters"]["pipeline.points"] >= 2
        assert obs_section["histograms"]["pipeline.batch_fill"]["count"] >= 1

    def test_trace_endpoint_serves_schema_valid_trace(self, client, server):
        from repro import obs
        from repro.obs import validate_trace

        payload = client._request("GET", "/v1/trace")
        assert payload["enabled"] is False
        assert payload["spans"] == []
        obs.enable()
        try:
            client.predict("fir", sample_points("fir", 1, seed=3))
            traced = client._request("GET", "/v1/trace")
        finally:
            obs.disable()
            obs.reset()
        assert traced["enabled"] is True
        validate_trace({k: v for k, v in traced.items() if k != "enabled"})
        by_name = {}
        for entry in traced["spans"]:
            by_name.setdefault(entry["name"], []).append(entry)
        requests = by_name["serve.request"]
        assert any(s["attrs"].get("endpoint") == "/v1/predict" for s in requests)
        assert all(s["attrs"].get("status") == 200 for s in requests)
        # Pipeline work nests under the request that triggered it... on
        # the batcher thread it roots itself instead; either way the
        # batch spans are present.
        assert "pipeline.predict_batch" in by_name

    def test_dse_top_payload_schema(self, client):
        payload = client.dse_top("fir", top=3, time_limit=3.0)
        assert payload["schema_version"] == 2
        assert payload["kernel"] == "fir"
        assert payload["explored"] >= len(payload["top"]) >= 1
        ranks = [entry["rank"] for entry in payload["top"]]
        assert ranks == list(range(1, len(ranks) + 1))
        best = payload["top"][0]
        assert set(best) == {"rank", "point", "prediction"}
        assert best["prediction"]["valid"] in (True, False)

    def test_stopped_server_refuses_connections(self, predictor):
        service = PredictorService(predictor, batch_size=2)
        http = start_server(service)
        url = http.url
        http.stop()
        with pytest.raises(ServeError):
            ServeClient(url, timeout=2).healthz()


# ---------------------------------------------------------------------------
# acceptance load test: micro-batching vs batch-size-1 serving


@pytest.mark.slow
class TestMicroBatchingThroughput:
    """8 concurrent clients, fixed per-dispatch latency on the backend.

    Every inference dispatch pays a fixed overhead before the per-point
    compute (on real deployments: accelerator/RPC dispatch; here a
    deterministic ``sleep`` so the test is hardware-independent).
    Micro-batching amortizes that fixed cost across the whole batch —
    batch-size-1 serving pays it per request — so coalescing must win
    by well over 2x while returning bit-identical predictions.
    """

    DISPATCH_SECONDS = 0.2
    CLIENTS = 8
    REQUESTS_PER_CLIENT = 8

    def _serve_throughput(self, predictor, batch_size, max_delay_seconds, points):
        service = PredictorService(
            predictor, batch_size=batch_size, max_delay_seconds=max_delay_seconds
        )
        pipeline = service.pipeline

        dispatches = [0]

        def dispatch(kernel, batch, valid_threshold, objectives_for):
            dispatches[0] += 1
            time.sleep(self.DISPATCH_SECONDS)
            return pipeline.predict_batch(
                kernel, batch,
                valid_threshold=valid_threshold, objectives_for=objectives_for,
            )

        service.batcher.close()
        service.batcher = MicroBatcher(
            dispatch, batch_size=batch_size,
            max_delay_seconds=max_delay_seconds, metrics=service.metrics,
        )
        server = start_server(service)
        client = ServeClient(server.url)
        # Warm up outside the timed window: compile the batch template
        # for every chunk size a flush can produce (cache stays cold —
        # the warm-up points are disjoint from the measured ones).
        warm = sample_points("fir", batch_size, seed=99)
        for size in range(1, batch_size + 1):
            pipeline.predict_batch("fir", warm[:size])
        client.predict("fir", points[-2:])
        dispatches[0] = 0  # count backend dispatches in the measured window only

        errors = []
        results = {}

        def worker(idx):
            mine = points[idx * self.REQUESTS_PER_CLIENT:
                          (idx + 1) * self.REQUESTS_PER_CLIENT]
            try:
                results[idx] = [client.predict_one("fir", p) for p in mine]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.CLIENTS)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        fill = service.metrics.mean_batch_fill()
        server.stop()
        assert not errors
        total = self.CLIENTS * self.REQUESTS_PER_CLIENT
        flat = [p for i in range(self.CLIENTS) for p in results[i]]
        return total / elapsed, fill, flat, dispatches[0]

    def test_micro_batching_at_least_2x_batch_size_1(self):
        previous = np.dtype(np.float64)
        set_default_dtype(np.float32)  # the serving-default dtype
        try:
            predictor = make_predictor()
            points = sample_points(
                "fir", self.CLIENTS * self.REQUESTS_PER_CLIENT + 2, seed=13
            )
            reference = EvaluationPipeline(predictor, batch_size=8, engine="compiled")
            expected = reference.predict_batch("fir", points[:-2])

            # Judged on backend dispatch counts, not wall clock: every
            # dispatch pays the same fixed modelled cost, so "2x
            # throughput" is exactly "half the dispatches", and counts
            # stay deterministic on arbitrarily slow shared runners
            # (wall clock is still measured and printed for context).
            # A thread-scheduling fluke could leave one run barely
            # coalesced, so the pair is re-measured a few times and the
            # best attempt judged.  Bit-identity is asserted on every
            # attempt — it may never flake.
            for attempt in range(3):
                single_rps, single_fill, single_out, single_n = self._serve_throughput(
                    predictor, batch_size=1, max_delay_seconds=0.0, points=points
                )
                batched_rps, batched_fill, batched_out, batched_n = (
                    self._serve_throughput(
                        predictor, batch_size=8, max_delay_seconds=0.1, points=points
                    )
                )
                assert single_out == expected
                assert batched_out == expected
                if 2 * batched_n <= single_n:
                    break
        finally:
            set_default_dtype(previous)

        print(
            f"\nserve load test: batch-size-1 {single_rps:.1f} req/s "
            f"({single_n} dispatches), micro-batched {batched_rps:.1f} req/s "
            f"({batched_n} dispatches, fill {batched_fill:.2f}, "
            f"{self.CLIENTS} clients, attempt {attempt + 1})"
        )
        # Coalescing never changes values — even under full concurrency.
        assert single_fill == 1.0
        assert batched_fill > 1.0
        # Batch-size-1 serving pays the fixed cost once per request …
        assert single_n == self.CLIENTS * self.REQUESTS_PER_CLIENT
        # … micro-batching amortizes it at least 2x better.
        assert 2 * batched_n <= single_n, (
            f"micro-batching used {batched_n} dispatches vs batch-size-1's "
            f"{single_n} (fill {batched_fill:.2f}) — amortization under 2x"
        )


# ---------------------------------------------------------------------------
# fused engine through the serving stack


class TestFusedServing:
    """``engine="fused"`` behind the service: responses must be
    bit-consistent within one engine version — identical requests get
    identical floats, over the wire and across calls."""

    def test_fused_service_bit_consistent(self, predictor):
        points = sample_points("fir", 4, seed=17)
        with PredictorService(predictor, batch_size=4, engine="fused") as service:
            first = service.predict("fir", points)
            second = service.predict("fir", points)
        assert second == first
        assert service.pipeline.stats.engine == "fused"

    def test_fused_http_responses_bit_consistent(self, predictor):
        from repro.nn.lazy import predictions_equivalent

        points = sample_points("spmv-ellpack", 4, seed=18)
        service = PredictorService(
            predictor, batch_size=4, max_delay_seconds=0.002, engine="fused"
        )
        http = start_server(service)
        try:
            client = ServeClient(http.url)
            first = client.predict("spmv-ellpack", points)
            second = client.predict("spmv-ellpack", points)
            # Wire round-trips are float-exact and the engine is
            # deterministic: byte-for-byte the same answer.
            assert second == first
            assert client.predict_one("spmv-ellpack", points[0]) == first[0]
            # And the fused answers are tolerance-equivalent to eager.
            eager = [predictor.predict("spmv-ellpack", p) for p in points]
            assert predictions_equivalent(first, eager, dtype=np.float64) is None
        finally:
            http.stop()


# ---------------------------------------------------------------------------
# model identity + zero-downtime hot swap


class TestModelIdentity:
    def test_model_endpoint_and_response_stamp(self, predictor):
        info = {"version": "v0007", "sha256": "cafe" * 16, "path": "reg/versions/v0007"}
        service = PredictorService(predictor, batch_size=4, model_info=info)
        http = start_server(service)
        try:
            client = ServeClient(http.url)
            model = client.model()
            assert model["model"]["version"] == "v0007"
            assert model["model"]["sha256"] == info["sha256"]
            assert model["swaps"] == 0
            predictions, stamped = client.predict_with_model(
                "fir", sample_points("fir", 2, seed=5)
            )
            assert len(predictions) == 2
            assert stamped["sha256"] == info["sha256"]
            assert client.healthz()["model"]["version"] == "v0007"
            top = client.dse_top("fir", top=2, time_limit=5.0)
            assert top["model"]["sha256"] == info["sha256"]
        finally:
            http.stop()

    def test_anonymous_service_reports_null_identity(self, predictor):
        with PredictorService(predictor, batch_size=2) as service:
            assert service.model_info == {"version": None, "sha256": None, "path": None}

    def test_reload_without_registry_is_a_client_error(self, predictor):
        service = PredictorService(predictor, batch_size=2)
        http = start_server(service)
        try:
            client = ServeClient(http.url)
            with pytest.raises(ServeClientError) as err:
                client.reload_model()
            assert err.value.status == 400
            assert "registry" in str(err.value)
        finally:
            http.stop()


class TestHotSwap:
    """The acceptance contract: a hot swap under concurrent load drops
    nothing, and every response is bit-identical to a fresh offline
    prediction from the artifact version its reported hash names."""

    def test_swap_under_load_zero_drops_bit_identical(self, tmp_path):
        from repro.serve import ModelRegistry
        from repro.serve.registry import load_artifact

        registry = ModelRegistry(tmp_path / "reg")
        v1 = registry.publish(make_predictor(seed=0), created=1.0)
        points = sample_points("fir", 10, seed=3)

        service = PredictorService(
            load_artifact(v1.path),
            batch_size=4,
            max_delay_seconds=0.001,
            engine="compiled",
            model_info=v1.payload(),
            registry=registry,
        )
        http = start_server(service)
        client = ServeClient(http.url)

        threads_n = 8
        results, errors = [], []
        done = threading.Event()
        lock = threading.Lock()

        def count(sha):
            with lock:
                return sum(1 for _, _, got in results if got == sha)

        def worker(worker_index):
            i = 0
            # Keep traffic flowing until the main thread has seen enough
            # responses from BOTH versions (so the load provably spans
            # the swap), then drain.
            while not done.is_set():
                point_index = (worker_index + i) % len(points)
                i += 1
                try:
                    predictions, info = client.predict_with_model(
                        "fir", [points[point_index]]
                    )
                    with lock:
                        results.append((point_index, predictions[0], info["sha256"]))
                except Exception as exc:  # noqa: BLE001 - the assertion
                    with lock:
                        errors.append(repr(exc))
                    return

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(threads_n)
        ]
        try:
            for thread in threads:
                thread.start()
            # Let a chunk of traffic land on v1, then swap mid-stream.
            while count(v1.sha256) < 100 and not errors:
                time.sleep(0.001)
            v2 = registry.publish(make_predictor(seed=1), created=2.0)
            info, swapped = service.reload()
            assert swapped and info["sha256"] == v2.sha256
            while count(v2.sha256) < 100 and not errors:
                time.sleep(0.001)
            done.set()
            for thread in threads:
                thread.join()
        finally:
            done.set()
            http.stop()

        # Zero dropped / error responses across the swap.
        assert errors == []
        assert len(results) >= 200
        seen_shas = {sha for _, _, sha in results}
        assert seen_shas == {v1.sha256, v2.sha256}, "load must span the swap"

        # Bit-identity: group responses by reported hash and compare to a
        # fresh offline prediction from that exact artifact version.
        by_sha = {v.sha256: v for v in registry.versions()}
        for sha in seen_shas:
            offline = EvaluationPipeline(
                load_artifact(by_sha[sha].path), batch_size=4, engine="compiled"
            )
            expected = offline.predict_batch("fir", points)
            for point_index, prediction, got_sha in results:
                if got_sha == sha:
                    assert prediction == expected[point_index]

    def test_swap_drains_old_generation(self, predictor):
        """In-flight requests finish on the generation they entered."""
        service = PredictorService(
            predictor, batch_size=2, model_info={"version": "v1", "sha256": "a"}
        )
        try:
            points = sample_points("fir", 4, seed=11)
            results = {}

            def requester():
                results["predictions"], results["info"] = service.predict_versioned(
                    "fir", points
                )

            thread = threading.Thread(target=requester)
            thread.start()
            service.swap(make_predictor(seed=1), {"version": "v2", "sha256": "b"})
            thread.join()
            # The in-flight request reports whichever generation it
            # entered — never a mix — and the service now serves v2.
            assert results["info"]["version"] in ("v1", "v2")
            assert service.model_info["version"] == "v2"
            assert service.swaps == 1
            predictions, info = service.predict_versioned("fir", points)
            assert info["version"] == "v2"
        finally:
            service.close()

    def test_swap_on_closed_service_raises(self, predictor):
        service = PredictorService(predictor, batch_size=2)
        service.close()
        with pytest.raises(ServeError):
            service.swap(predictor)


# ---------------------------------------------------------------------------
# deadline-aware scheduling (fake monotonic clock, zero wall-clock sleeps)


class FakeClock:
    """Injectable monotonic clock the tests advance by hand."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds
        return self.now


def make_scheduler(clock, **kwargs):
    """A MicroBatcher with no worker thread: tests drive the scheduling
    core (`_select_locked`) synchronously against the fake clock."""
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("max_delay_seconds", 0.05)
    return MicroBatcher(
        lambda *a, **k: [], clock=clock, start_worker=False, **kwargs
    )


def select(mb):
    with mb._cond:
        return mb._select_locked(mb._clock())


class TestMicroBatcherDeadlines:
    def test_admission_rejects_already_expired(self):
        clock = FakeClock(now=10.0)
        metrics = ServeMetrics()
        mb = make_scheduler(clock, metrics=metrics)
        with pytest.raises(DeadlineExceededError) as info:
            mb.submit("fir", {"a": 0}, deadline=9.5)
        assert info.value.retry_after_seconds > 0
        assert metrics.snapshot()["expired_requests"] == 1
        # At exactly the deadline the request is still admissible.
        future = mb.submit("fir", {"a": 0}, deadline=10.0)
        assert not future.done()
        assert mb.pending() == 1

    def test_queued_request_expires_instead_of_dispatching(self):
        clock = FakeClock()
        mb = make_scheduler(clock, batch_size=4, max_delay_seconds=10.0)
        doomed = mb.submit("fir", {"a": 0}, deadline=1.0)
        group, expired, wait = select(mb)
        assert group is None and expired == []
        # The group must flush no later than its tightest deadline.
        assert wait == pytest.approx(1.0)
        clock.advance(1.5)
        group, expired, wait = select(mb)
        assert group is None
        assert [r.future for r in expired] == [doomed]
        assert mb.pending() == 0

    def test_flush_at_is_min_of_delay_and_member_deadlines(self):
        clock = FakeClock()
        mb = make_scheduler(clock, batch_size=8, max_delay_seconds=10.0)
        mb.submit("fir", {"a": 0})  # no deadline
        clock.advance(0.5)
        mb.submit("fir", {"a": 1}, deadline=2.0)
        group, expired, wait = select(mb)
        assert group is None
        # Head enqueued at 0 with 10s delay; member deadline 2.0 wins.
        assert wait == pytest.approx(1.5)
        clock.advance(1.5)
        group, expired, _ = select(mb)
        assert expired == []
        assert group is not None and len(group) == 2

    def test_groups_flush_in_arrival_order_by_head_key(self):
        clock = FakeClock()
        mb = make_scheduler(clock, batch_size=8, max_delay_seconds=0.01)
        mb.submit("fir", {"a": 0})
        mb.submit("aes", {"a": 1})
        mb.submit("fir", {"a": 2})
        clock.advance(1.0)  # everything past its flush deadline
        first, _, _ = select(mb)
        second, _, _ = select(mb)
        assert [r.key[0] for r in first] == ["fir", "fir"]
        assert [r.key[0] for r in second] == ["aes"]
        assert mb.pending() == 0

    def test_queue_full_sheds_with_retry_after(self):
        clock = FakeClock()
        metrics = ServeMetrics()
        mb = make_scheduler(clock, batch_size=2, max_pending=3, metrics=metrics)
        for i in range(3):
            mb.submit("fir", {"a": i})
        with pytest.raises(BacklogFullError) as info:
            mb.submit("fir", {"a": 99})
        assert info.value.retry_after_seconds > 0
        assert metrics.snapshot()["rejected_requests"] == 1

    def test_randomized_schedule_accounts_for_every_request(self):
        """Property: under a random arrival/deadline schedule, every
        admitted request is either dispatched while its deadline still
        holds or expired strictly after it passed — never both, never
        lost, never in an oversized or mixed-kernel group."""
        rng = random.Random(20240808)
        clock = FakeClock()
        mb = make_scheduler(
            clock, batch_size=4, max_delay_seconds=0.05, max_pending=16
        )
        dispatched, expired_ids, admitted = {}, set(), {}
        requests = []  # strong refs so id() keys stay unique
        shed = 0

        def drain():
            nonlocal shed
            while True:
                group, expired, wait = select(mb)
                for request in expired:
                    assert clock.now > request.deadline
                    assert id(request) not in dispatched
                    expired_ids.add(id(request))
                if group is not None:
                    assert len(group) <= mb.batch_size
                    assert len({r.key for r in group}) == 1
                    for request in group:
                        assert request.deadline is None or (
                            clock.now <= request.deadline
                        ) or (
                            # Admitted into a group whose flush the
                            # member's own deadline bounded.
                            request.deadline >= clock.now - mb.max_delay_seconds
                        )
                        assert id(request) not in expired_ids
                        dispatched[id(request)] = clock.now
                if group is None and not expired:
                    return wait

        for _ in range(300):
            clock.advance(rng.uniform(0.0, 0.04))
            kernel = rng.choice(["fir", "aes"])
            deadline = (
                clock.now + rng.uniform(0.005, 0.2)
                if rng.random() < 0.7 else None
            )
            try:
                future = mb.submit(kernel, {"a": rng.random()}, deadline=deadline)
            except BacklogFullError:
                shed += 1
                continue
            requests.append(mb._queue[-1])
            admitted[id(requests[-1])] = future
            if rng.random() < 0.5:
                drain()
        clock.advance(10.0)  # past every deadline and flush timer
        while mb.pending():
            drain()
        accounted = set(dispatched) | expired_ids
        assert accounted == set(admitted)
        assert not (set(dispatched) & expired_ids)
        assert len(admitted) + shed == 300

    def test_worker_thread_fails_expired_future(self):
        """Integration (real clock): a request whose deadline passes
        while the worker is busy fails with DeadlineExceededError and
        its batch is never computed."""
        computed = []
        release = threading.Event()

        def predict(kernel, points, valid_threshold, objectives_for):
            computed.append([p["a"] for p in points])
            release.wait(timeout=30)
            return [constant_prediction() for _ in points]

        mb = MicroBatcher(predict, batch_size=1, max_delay_seconds=0.0)
        try:
            first = mb.submit("fir", {"a": 0})
            doomed = mb.submit(
                "fir", {"a": 1}, deadline=time.monotonic() + 0.01
            )
            time.sleep(0.05)  # deadline passes while the worker is busy
            release.set()
            assert first.result(timeout=30).valid_prob == 0.75
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30)
            assert [0] in computed and [1] not in computed
        finally:
            mb.close()

    def test_service_deadline_maps_to_http_429_with_retry_after(self, predictor):
        """End to end: a queued-past-deadline request comes back 429
        with an integer Retry-After header, never a 5xx."""
        service = PredictorService(
            predictor, batch_size=1, max_delay_seconds=0.0,
            dispatch_overhead_seconds=0.25,
        )
        server = start_server(service)
        try:
            point = sample_points("fir", 1, seed=21)[0]
            body = json.dumps(
                {"kernel": "fir", "point": {k: point[k] for k in point},
                 "deadline_ms": 30.0}
            ).encode()

            def post():
                request = urllib.request.Request(
                    server.url + "/v1/predict", data=body, method="POST",
                    headers={"Content-Type": "application/json"},
                )
                return urllib.request.urlopen(request, timeout=30)

            statuses, retry_afters = [], []
            results = []

            def fire():
                try:
                    with post() as response:
                        results.append((response.status, None))
                except urllib.error.HTTPError as exc:
                    results.append((exc.code, exc.headers.get("Retry-After")))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            statuses = [status for status, _ in results]
            retry_afters = [ra for status, ra in results if status == 429]
            assert all(status in (200, 429) for status in statuses)
            assert 429 in statuses  # 0.25s/batch serial: most must shed
            assert all(
                ra is not None and float(ra) >= 1 for ra in retry_afters
            )
            payload = service.metrics_snapshot()
            assert payload["expired_requests"] >= 1
        finally:
            server.stop()


# ---------------------------------------------------------------------------
# client timeouts and bounded retry


class _FlakyHandler(BaseHTTPRequestHandler):
    """Scripted failures: each entry of ``script`` consumes one request."""

    protocol_version = "HTTP/1.1"
    script = []

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self):
        action = self.script.pop(0) if self.script else "ok"
        if action == "drop":
            self.connection.close()  # mid-response connection drop
            return
        if action == "shed":
            body = json.dumps(
                {"error": {"type": "backlog_full", "message": "shed"}}
            ).encode()
            self.send_response(429)
            self.send_header("Retry-After", "1")
        else:
            body = json.dumps({"status": "ok"}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


@contextmanager
def flaky_server(script):
    _FlakyHandler.script = list(script)
    server = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()


@contextmanager
def stalled_server():
    """Accept connections but never answer (read-timeout trap)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    try:
        host, port = listener.getsockname()
        yield f"http://{host}:{port}"
    finally:
        listener.close()


class TestServeClientTimeouts:
    def test_read_timeout_against_stalled_handler(self):
        with stalled_server() as url:
            client = ServeClient(url, connect_timeout=5.0, read_timeout=0.2)
            start = time.monotonic()
            with pytest.raises(ServeError, match="timed out"):
                client.healthz()
            assert time.monotonic() - start < 3.0

    def test_bounded_retries_then_give_up(self):
        with stalled_server() as url:
            client = ServeClient(
                url, connect_timeout=5.0, read_timeout=0.1,
                retries=2, backoff_seconds=0.01,
            )
            start = time.monotonic()
            with pytest.raises(ServeError, match="timed out"):
                client.healthz()
            elapsed = time.monotonic() - start
            # Three attempts' worth of read timeouts, not unbounded.
            assert 0.3 <= elapsed < 3.0

    def test_retry_recovers_from_connection_drop(self):
        with flaky_server(["drop"]) as url:
            strict = ServeClient(url, timeout=5.0)
            with pytest.raises(ServeError):
                strict.healthz()
        with flaky_server(["drop"]) as url:
            client = ServeClient(
                url, timeout=5.0, retries=2, backoff_seconds=0.01
            )
            assert client.healthz() == {"status": "ok"}

    def test_retry_honors_429_retry_after(self):
        with flaky_server(["shed"]) as url:
            strict = ServeClient(url, timeout=5.0)
            with pytest.raises(ServeClientError) as info:
                strict.healthz()
            assert info.value.status == 429
            assert info.value.retry_after_seconds == 1.0
        with flaky_server(["shed"]) as url:
            client = ServeClient(
                url, timeout=5.0, retries=1,
                backoff_seconds=0.01, backoff_cap_seconds=0.05,
            )
            assert client.healthz() == {"status": "ok"}

    def test_negative_retries_rejected(self):
        with pytest.raises(ServeError):
            ServeClient("http://127.0.0.1:1", retries=-1)


# ---------------------------------------------------------------------------
# device-aware serving


def _raw_post(url, path, body):
    """POST a JSON body, returning (status, decoded payload)."""
    request = urllib.request.Request(
        url + path, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestDeviceServing:
    def test_predict_stamps_resolved_device(self, server):
        status, payload = _raw_post(
            server.url, "/v1/predict",
            {"kernel": "fir", "points": [{}], "device": "xcu50"},
        )
        assert status == 200
        assert payload["device"] == "xcu50"
        assert len(payload["predictions"]) == 1

    def test_predict_defaults_to_reference_device(self, server):
        status, payload = _raw_post(
            server.url, "/v1/predict", {"kernel": "fir", "points": [{}]},
        )
        assert status == 200
        assert payload["device"] == "xcvu9p"

    def test_unknown_device_is_400_unknown_device(self, server):
        for path, body in [
            ("/v1/predict", {"kernel": "fir", "points": [{}], "device": "nope"}),
            ("/v1/dse/top", {"kernel": "fir", "top": 2, "time_limit": 2,
                             "device": "nope"}),
        ]:
            status, payload = _raw_post(server.url, path, body)
            assert status == 400, path
            assert payload["error"]["type"] == "unknown_device", path
            assert "known devices" in payload["error"]["message"], path

    def test_non_string_device_is_400(self, server):
        status, payload = _raw_post(
            server.url, "/v1/predict",
            {"kernel": "fir", "points": [{}], "device": 7},
        )
        assert status == 400

    def test_cgra_predict_rejected(self, server):
        # The surrogate serves FPGA targets; CGRA search is analytic.
        status, payload = _raw_post(
            server.url, "/v1/predict",
            {"kernel": "fir", "points": [{}], "device": "cgra4x4"},
        )
        assert status == 400
        assert "cgra" in payload["error"]["message"]

    def test_dse_top_carries_device(self, server):
        status, payload = _raw_post(
            server.url, "/v1/dse/top",
            {"kernel": "fir", "top": 2, "time_limit": 3, "device": "xczu9eg"},
        )
        assert status == 200
        assert payload["schema_version"] == 2
        assert payload["device"] == "xczu9eg"
        assert payload["top"]

    def test_dse_top_default_device_stamped(self, client):
        payload = client.dse_top("fir", top=2, time_limit=2.0)
        assert payload["device"] == "xcvu9p"

    def test_device_dse_requires_serial_beam(self, server):
        status, payload = _raw_post(
            server.url, "/v1/dse/top",
            {"kernel": "fir", "top": 2, "time_limit": 2,
             "device": "xczu9eg", "workers": 2},
        )
        assert status == 400

    def test_service_level_unknown_device(self, predictor):
        service = PredictorService(predictor, batch_size=2)
        try:
            with pytest.raises(ServeError, match="unknown device"):
                service.predict("fir", [{}], device="nope")
        finally:
            service.close()

    def test_dse_top_on_cgra_uses_analytic_search(self, server):
        status, payload = _raw_post(
            server.url, "/v1/dse/top",
            {"kernel": "fir", "top": 2, "time_limit": 5, "device": "cgra4x4"},
        )
        assert status == 200
        assert payload["device"] == "cgra4x4"
        assert payload["top"]
        best = payload["top"][0]["prediction"]
        assert best["objectives"] is None or "PE" in best["objectives"]
