"""Tests for CFG dominator and natural-loop analyses.

The key cross-check: natural loops recovered *from the block graph*
must match the loop set the AST-level analysis reports — two
independent derivations of the same structure.
"""

import pytest

from repro.frontend.parser import parse_source
from repro.ir import lower_unit
from repro.ir.cfg import compute_dominators, find_natural_loops
from repro.kernels import KERNELS, get_kernel


def lower(src):
    return lower_unit(parse_source(src))


class TestDominators:
    def test_entry_dominates_all(self):
        module = lower(
            "void f(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = 0; } }"
        )
        fn = module.top
        tree = compute_dominators(fn)
        for block in fn.blocks:
            assert tree.dominates(fn.entry, block)

    def test_entry_has_no_idom(self):
        module = lower("void f(int a[2]) { a[0] = 1; }")
        tree = compute_dominators(module.top)
        assert tree.idom[module.top.entry] is None

    def test_if_join_dominated_by_condition_block(self):
        module = lower(
            "void f(int a[4]) { if (a[0] > 0) { a[1] = 1; } else { a[1] = 2; }"
            " a[2] = 3; }"
        )
        fn = module.top
        tree = compute_dominators(fn)
        then_block = next(b for b in fn.blocks if "if.then" in b.name)
        end_block = next(b for b in fn.blocks if "if.end" in b.name)
        # Neither branch dominates the join; entry does.
        assert not tree.dominates(then_block, end_block)
        assert tree.dominates(fn.entry, end_block)

    def test_loop_cond_dominates_body(self):
        module = lower(
            "void f(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = 0; } }"
        )
        fn = module.top
        tree = compute_dominators(fn)
        cond = next(b for b in fn.blocks if "for.cond" in b.name)
        body = next(b for b in fn.blocks if "for.body" in b.name)
        assert tree.dominates(cond, body)

    def test_dominators_of_chain(self):
        module = lower("void f(int a[2]) { a[0] = 1; }")
        fn = module.top
        tree = compute_dominators(fn)
        chain = tree.dominators_of(fn.blocks[-1])
        assert chain[-1] is fn.entry


class TestNaturalLoops:
    def test_single_loop_detected(self):
        module = lower(
            "void f(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = 0; } }"
        )
        loops = find_natural_loops(module.top)
        assert len(loops) == 1
        assert "for.cond" in loops[0].header.name
        assert loops[0].label == "L0"

    def test_nested_loops_detected(self):
        module = lower(
            "void f(int a[8]) { for (int i = 0; i < 8; i++) {"
            " for (int j = 0; j < 8; j++) { a[j] = i; } } }"
        )
        loops = find_natural_loops(module.top)
        assert len(loops) == 2
        outer = next(l for l in loops if l.label == "L0")
        inner = next(l for l in loops if l.label == "L1")
        # The inner loop's blocks are a subset of the outer loop's.
        assert inner.blocks < outer.blocks

    def test_loop_body_blocks_in_loop(self):
        module = lower(
            "void f(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = 0; } }"
        )
        fn = module.top
        loops = find_natural_loops(fn)
        body = next(b for b in fn.blocks if "for.body" in b.name)
        end = next(b for b in fn.blocks if "for.end" in b.name)
        assert loops[0].contains(body)
        assert not loops[0].contains(end)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_cfg_loops_match_ast_analysis(self, name):
        """CFG-recovered loops == AST-reported loops, for every kernel."""
        spec = get_kernel(name)
        fn_analysis = spec.analysis.top
        ast_labels = {l.label for l in fn_analysis.all_loops()}
        ir_fn = spec.module.function(spec.analysis.top_function)
        cfg_labels = {l.label for l in find_natural_loops(ir_fn)}
        assert cfg_labels == ast_labels

    def test_loop_nesting_depth_matches(self):
        spec = get_kernel("gemm-ncubed")
        ir_fn = spec.module.top
        loops = {l.label: l for l in find_natural_loops(ir_fn)}
        assert loops["L2"].blocks < loops["L1"].blocks < loops["L0"].blocks
