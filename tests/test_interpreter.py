"""Functional validation: interpret the kernels against numpy oracles.

Problem sizes are shrunk via the lexer's predefined-macro override so
each kernel executes in milliseconds, and results are compared with an
independent numpy implementation of the same math.  This pins down the
*semantics* of the front-end (parser + AST) end to end.
"""

import numpy as np
import pytest

from repro.frontend.interpreter import InterpreterError, run_kernel
from repro.frontend.parser import parse_source
from repro.kernels import get_kernel


def parse_small(name, macros):
    spec = get_kernel(name)
    return parse_source(spec.source, name, predefined={k: str(v) for k, v in macros.items()})


class TestBasics:
    def test_scalar_return(self):
        unit = parse_source("int add(int a, int b) { return a + b; }")
        assert run_kernel(unit, [2, 3]) == 5

    def test_array_mutation_in_place(self):
        unit = parse_source(
            "void inc(int a[4]) { for (int i = 0; i < 4; i++) { a[i] += 1; } }"
        )
        data = np.zeros(4, dtype=np.int64)
        run_kernel(unit, [data])
        np.testing.assert_array_equal(data, [1, 1, 1, 1])

    def test_integer_division_truncates_like_c(self):
        unit = parse_source("int f(int a, int b) { return a / b; }")
        assert run_kernel(parse_source("int f(int a, int b) { return a / b; }"), [-7, 2]) == -3
        assert run_kernel(unit, [7, 2]) == 3

    def test_break_continue(self):
        unit = parse_source(
            "int f() { int s = 0; for (int i = 0; i < 10; i++) {"
            " if (i == 3) { continue; } if (i == 6) { break; } s += i; }"
            " return s; }"
        )
        assert run_kernel(unit, []) == 0 + 1 + 2 + 4 + 5

    def test_user_function_call(self):
        unit = parse_source(
            "int sq(int v) { return v * v; }\n"
            "int f(int x) { return sq(x) + sq(x + 1); }"
        )
        assert run_kernel(unit, [3]) == 9 + 16

    def test_intrinsics(self):
        unit = parse_source("double f(double x) { return sqrt(x) + fabs(0.0 - x); }")
        assert run_kernel(unit, [4.0]) == pytest.approx(2.0 + 4.0)

    def test_out_of_bounds_store(self):
        unit = parse_source("void f(int a[2]) { a[5] = 1; }")
        with pytest.raises(InterpreterError):
            run_kernel(unit, [np.zeros(2, dtype=np.int64)])


class TestKernelSemantics:
    def test_gemm_ncubed(self):
        n = 6
        unit = parse_small("gemm-ncubed", {"NSIZE": n})
        rng = np.random.default_rng(0)
        m1, m2 = rng.normal(size=(n, n)), rng.normal(size=(n, n))
        prod = np.zeros((n, n))
        run_kernel(unit, [m1.copy(), m2.copy(), prod])
        np.testing.assert_allclose(prod, m1 @ m2, atol=1e-12)

    def test_gemm_blocked_matches_ncubed(self):
        n, b = 8, 4
        unit = parse_small("gemm-blocked", {"NSIZE": n, "BSIZE": b})
        rng = np.random.default_rng(1)
        m1, m2 = rng.normal(size=(n, n)), rng.normal(size=(n, n))
        prod = np.zeros((n, n))
        run_kernel(unit, [m1.copy(), m2.copy(), prod])
        np.testing.assert_allclose(prod, m1 @ m2, atol=1e-12)

    def test_atax(self):
        m, n = 5, 4
        unit = parse_small("atax", {"M": m, "N": n})
        rng = np.random.default_rng(2)
        a, x = rng.normal(size=(m, n)), rng.normal(size=n)
        y, tmp = np.zeros(n), np.zeros(m)
        run_kernel(unit, [a.copy(), x.copy(), y, tmp])
        np.testing.assert_allclose(y, a.T @ (a @ x), atol=1e-12)
        np.testing.assert_allclose(tmp, a @ x, atol=1e-12)

    def test_mvt(self):
        n = 5
        unit = parse_small("mvt", {"N": n})
        rng = np.random.default_rng(3)
        a = rng.normal(size=(n, n))
        x1, x2 = rng.normal(size=n), rng.normal(size=n)
        y1, y2 = rng.normal(size=n), rng.normal(size=n)
        expected_x1 = x1 + a @ y1
        expected_x2 = x2 + a.T @ y2
        run_kernel(unit, [a.copy(), x1, x2, y1.copy(), y2.copy()])
        np.testing.assert_allclose(x1, expected_x1, atol=1e-12)
        np.testing.assert_allclose(x2, expected_x2, atol=1e-12)

    def test_spmv_crs(self):
        rows, nnz = 4, 8
        unit = parse_small("spmv-crs", {"NR": rows, "NNZ": nnz})
        val = np.array([2.0, 1.0, 3.0, 4.0, 5.0, 1.0, 2.0, 6.0])
        cols = np.array([0, 2, 1, 3, 0, 1, 2, 3], dtype=np.int64)
        row_delim = np.array([0, 2, 4, 6, 8], dtype=np.int64)
        vec = np.array([1.0, 2.0, 3.0, 4.0])
        out = np.zeros(rows)
        run_kernel(unit, [val, cols, row_delim, vec, out])
        dense = np.zeros((rows, 4))
        for r in range(rows):
            for k in range(row_delim[r], row_delim[r + 1]):
                dense[r, cols[k]] = val[k]
        np.testing.assert_allclose(out, dense @ vec, atol=1e-12)

    def test_spmv_ellpack(self):
        rows, width = 4, 2
        unit = parse_small("spmv-ellpack", {"NR": rows, "L": width})
        rng = np.random.default_rng(4)
        nzval = rng.normal(size=rows * width)
        cols = rng.integers(0, rows, size=rows * width)
        vec = rng.normal(size=rows)
        out = np.zeros(rows)
        run_kernel(unit, [nzval.copy(), cols.copy(), vec.copy(), out])
        expected = np.array(
            [
                sum(nzval[i * width + j] * vec[cols[i * width + j]] for j in range(width))
                for i in range(rows)
            ]
        )
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_stencil(self):
        rows = cols = 6
        unit = parse_small("stencil", {"ROWS": rows, "COLS": cols})
        rng = np.random.default_rng(5)
        orig = rng.normal(size=rows * cols)
        filt = rng.normal(size=9)
        sol = np.zeros(rows * cols)
        run_kernel(unit, [orig.copy(), sol, filt.copy()])
        grid = orig.reshape(rows, cols)
        for r in range(rows - 2):
            for c in range(cols - 2):
                expected = sum(
                    filt[k1 * 3 + k2] * grid[r + k1, c + k2]
                    for k1 in range(3)
                    for k2 in range(3)
                )
                assert sol[r * cols + c] == pytest.approx(expected, abs=1e-12)

    def test_nw_against_reference_dp(self):
        alen = blen = 6
        unit = parse_small("nw", {"ALEN": alen, "BLEN": blen})
        rng = np.random.default_rng(6)
        seq_a = rng.integers(0, 4, size=alen)
        seq_b = rng.integers(0, 4, size=blen)
        table = np.zeros((alen + 1) * (blen + 1), dtype=np.int64)
        run_kernel(unit, [seq_a.copy(), seq_b.copy(), table])
        # Independent Needleman-Wunsch (match +1, mismatch -1, gap -1).
        ref = np.zeros((alen + 1, blen + 1), dtype=np.int64)
        ref[:, 0] = -np.arange(alen + 1)
        ref[0, :] = -np.arange(blen + 1)
        for i in range(1, alen + 1):
            for j in range(1, blen + 1):
                score = 1 if seq_a[i - 1] == seq_b[j - 1] else -1
                ref[i, j] = max(
                    ref[i - 1, j - 1] + score, ref[i - 1, j] - 1, ref[i, j - 1] - 1
                )
        np.testing.assert_array_equal(table.reshape(alen + 1, blen + 1), ref)

    def test_bicg(self):
        nx, ny = 5, 4
        unit = parse_small("bicg", {"NX": nx, "NY": ny})
        rng = np.random.default_rng(7)
        a = rng.normal(size=(nx, ny))
        p, r = rng.normal(size=ny), rng.normal(size=nx)
        s, q = np.zeros(ny), np.zeros(nx)
        run_kernel(unit, [a.copy(), s, q, p.copy(), r.copy()])
        np.testing.assert_allclose(s, a.T @ r, atol=1e-12)
        np.testing.assert_allclose(q, a @ p, atol=1e-12)

    def test_gesummv(self):
        n = 5
        unit = parse_small("gesummv", {"N": n})
        rng = np.random.default_rng(8)
        a, b = rng.normal(size=(n, n)), rng.normal(size=(n, n))
        x = rng.normal(size=n)
        tmp, y = np.zeros(n), np.zeros(n)
        run_kernel(unit, [a.copy(), b.copy(), tmp, x.copy(), y])
        np.testing.assert_allclose(y, 1.5 * (a @ x) + 1.2 * (b @ x), atol=1e-12)

    def test_2mm(self):
        n = 4
        unit = parse_small("2mm", {"NI": n, "NJ": n, "NK": n, "NL": n})
        rng = np.random.default_rng(9)
        a, b, c = (rng.normal(size=(n, n)) for _ in range(3))
        d = rng.normal(size=(n, n))
        tmp = np.zeros((n, n))
        expected = (1.5 * a @ b) @ c + 1.2 * d
        run_kernel(unit, [tmp, a.copy(), b.copy(), c.copy(), d])
        np.testing.assert_allclose(d, expected, atol=1e-12)

    def test_doitgen(self):
        r, q, p = 2, 2, 3
        unit = parse_small("doitgen", {"NR": r, "NQ": q, "NP": p})
        rng = np.random.default_rng(10)
        a = rng.normal(size=(r, q, p))
        c4 = rng.normal(size=(p, p))
        s = np.zeros(p)
        expected = np.einsum("rqs,sp->rqp", a, c4)
        run_kernel(unit, [a, c4.copy(), s])
        np.testing.assert_allclose(a, expected, atol=1e-12)

    def test_fir(self):
        taps, samples = 4, 12
        unit = parse_small("fir", {"NTAPS": taps, "NSAMPLES": samples})
        rng = np.random.default_rng(11)
        signal = rng.normal(size=samples)
        coeff = rng.normal(size=taps)
        out = np.zeros(samples)
        run_kernel(unit, [signal.copy(), coeff.copy(), out])
        expected = np.convolve(signal, coeff)[:samples]
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_syrk(self):
        n, m = 4, 3
        unit = parse_small("syrk", {"N": n, "M": m})
        rng = np.random.default_rng(12)
        a = rng.normal(size=(n, m))
        c = rng.normal(size=(n, n))
        expected = 1.2 * c + 1.5 * (a @ a.T)
        run_kernel(unit, [a.copy(), c])
        np.testing.assert_allclose(c, expected, atol=1e-12)

    def test_aes_sbox_substitution(self):
        unit = parse_small("aes", {"NB": 4, "NROUNDS": 2})
        key = np.arange(8, dtype=np.int64) % 256
        sbox = ((np.arange(256) * 7 + 3) % 256).astype(np.int64)
        buf = np.array([10, 20, 30, 40], dtype=np.int64)
        expected = buf.copy()
        for rnd in range(2):
            for i in range(4):
                expected[i] = sbox[(expected[i] ^ key[rnd * 4 + i]) & 255]
        run_kernel(unit, [key, sbox, buf])
        np.testing.assert_array_equal(buf, expected)
