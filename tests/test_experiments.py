"""Tests for the experiments layer: formatting, paper constants, context."""

import pytest

from repro.experiments import (
    FIG7_PAPER_AVERAGES,
    TABLE2_PAPER,
    TABLE3_PAPER,
    format_fig7,
    format_table1,
    format_table2,
    format_table3,
)
from repro.experiments.table1 import Table1Row
from repro.experiments.table2 import Table2Row
from repro.experiments.table3 import Table3Row


class TestPaperConstants:
    def test_table2_paper_totals_consistent(self):
        # "All" equals the sum of the five per-objective RMSEs.
        for model, row in TABLE2_PAPER.items():
            total = sum(row[k] for k in ("latency", "DSP", "LUT", "FF", "BRAM"))
            assert total == pytest.approx(row["all"], abs=2e-4), model

    def test_table2_paper_monotone_improvement(self):
        totals = [TABLE2_PAPER[f"M{i}"]["all"] for i in range(1, 8)]
        assert totals == sorted(totals, reverse=True)

    def test_fig7_paper_trend(self):
        assert list(FIG7_PAPER_AVERAGES) == sorted(FIG7_PAPER_AVERAGES)
        assert FIG7_PAPER_AVERAGES[-1] > 1.0 > FIG7_PAPER_AVERAGES[0]

    def test_table3_paper_speedup_range(self):
        speedups = [row[4] for row in TABLE3_PAPER.values()]
        assert min(speedups) == 11 and max(speedups) == 79


class TestFormatting:
    def test_format_table1(self):
        rows = [
            Table1Row("atax", 5, 4501, 121, 38, 140, 50),
            Table1Row("aes", 3, 27, 4, 4, 4, 4),
        ]
        text = format_table1(rows)
        assert "atax" in text and "4,501" in text
        assert "Total" in text

    def test_format_table2(self):
        metrics = {
            "latency": 1.0, "DSP": 0.1, "LUT": 0.1, "FF": 0.1, "BRAM": 0.1,
            "all": 1.4, "accuracy": 0.9, "f1": 0.8,
        }
        rows = [Table2Row("M7", "full model", metrics, TABLE2_PAPER["M7"])]
        text = format_table2(rows)
        assert "M7" in text and "(paper)" in text

    def test_format_table3(self):
        rows = [
            Table3Row(
                kernel="bicg", num_pragmas=5, design_configs=3536,
                dse_hls_minutes=12.0, explored=3536, runtime_speedup=40.0,
                gnn_dse_latency=1000, autodse_latency=990,
                autodse_hours=8.0, latency_ratio=1.01,
            )
        ]
        text = format_table3(rows)
        assert "bicg" in text and "40.0x" in text
        assert "average runtime speedup" in text

    def test_format_fig7(self):
        from repro.dse.augment import AugmentationResult, RoundOutcome

        result = AugmentationResult(
            rounds=[
                RoundOutcome(round=1, speedup={"atax": 0.7, "nw": 0.9}),
                RoundOutcome(round=2, speedup={"atax": 1.1, "nw": 1.2}),
            ]
        )
        text = format_fig7(result)
        assert "atax" in text and "Average" in text and "(paper avg)" in text


class TestContextPaths:
    def test_cache_paths_encode_settings(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(cache_dir=tmp_path, scale=0.25, epochs=7, seed=3)
        assert "s0.25" in ctx.database_path.name
        assert "r3" in ctx.database_path.name
        path = ctx._predictor_path("M7")
        assert "M7" in path.name and "e7" in path.name

    def test_result_roundtrip(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(cache_dir=tmp_path, scale=0.25, epochs=7, seed=3)
        assert ctx.load_result("foo") is None
        ctx.save_result("foo", {"a": [1, 2]})
        assert ctx.load_result("foo") == {"a": [1, 2]}

    def test_env_overrides(self, tmp_path, monkeypatch):
        from repro.experiments import ExperimentContext

        monkeypatch.setenv("REPRO_SCALE", "0.11")
        monkeypatch.setenv("REPRO_EPOCHS", "9")
        ctx = ExperimentContext(cache_dir=tmp_path)
        assert ctx.scale == 0.11
        assert ctx.epochs == 9

    def test_bad_env_falls_back(self, tmp_path, monkeypatch):
        from repro.experiments import ExperimentContext

        monkeypatch.setenv("REPRO_SCALE", "not-a-number")
        ctx = ExperimentContext(cache_dir=tmp_path)
        assert ctx.scale == 0.3
