"""Tests for the sharded parallel DSE orchestrator (`repro.dse.parallel`).

The contract under test is exactness under failure: however the shards
are executed — in-process, across worker processes, through a crash and
retry, or split over two runs by a checkpoint — the merged result must
be bit-identical to the serial explorer's top-K ordering and Pareto
front.  Fault injection goes through :class:`WorkerHooks`, the same
hook the scaling benchmark uses for its simulated dispatch cost.
"""

import json
import logging
import os

import pytest

from repro.cli import main
from repro.designspace import build_design_space, point_key
from repro.dse import (
    DSECheckpoint,
    ModelDSE,
    ParallelDSE,
    ShardResult,
    WorkerHooks,
)
from repro.dse.parallel import candidate_from_payload, candidate_payload
from repro.errors import CheckpointError, DSEError, WorkerCrashError
from repro.kernels import get_kernel

from tests.test_pipeline import make_predictor

KERNEL = "fir"
TOP_M = 5


@pytest.fixture(scope="module")
def predictor():
    return make_predictor()


@pytest.fixture(scope="module")
def spec():
    return get_kernel(KERNEL)


@pytest.fixture(scope="module")
def space(spec):
    return build_design_space(spec)


# Function-scoped on purpose: the suite's autouse float64 fixture is
# function-scoped, and a module-scoped result would be computed *before*
# it on first use (higher scopes set up first) — i.e. under float32 —
# while the run under test executes under float64.
@pytest.fixture()
def serial_result(predictor, spec, space):
    return ModelDSE(predictor, spec, space, top_m=TOP_M).run()


def signature(result):
    """Bit-exact comparable view: top order + Pareto front, points + floats."""
    return (
        [(point_key(c.point), c.prediction) for c in result.top],
        [(point_key(c.point), c.prediction) for c in result.pareto],
    )


class _Abort(Exception):
    """Simulated mid-run kill for in-process checkpoint tests."""


# ---------------------------------------------------------------------------
# bit-identity


class TestBitIdentity:
    def test_workers1_matches_serial(self, predictor, spec, space, serial_result):
        result = ParallelDSE(predictor, spec, space, workers=1, top_m=TOP_M).run()
        assert signature(result) == signature(serial_result)
        assert result.explored == serial_result.explored
        assert result.workers == 1
        assert result.shards > 1
        assert result.retries == 0

    def test_workers1_never_spawns_processes(self, predictor, spec, space,
                                             serial_result, monkeypatch):
        dse = ParallelDSE(predictor, spec, space, workers=1, top_m=TOP_M)
        monkeypatch.setattr(
            dse, "_run_workers",
            lambda *a, **k: pytest.fail("workers=1 must stay in-process"),
        )
        assert signature(dse.run()) == signature(serial_result)

    def test_multiprocess_matches_serial(self, predictor, spec, space, serial_result):
        result = ParallelDSE(predictor, spec, space, workers=3, top_m=TOP_M).run()
        assert signature(result) == signature(serial_result)
        assert result.explored == serial_result.explored
        assert result.workers == 3
        assert result.retries == 0
        # Worker pipeline stats made it back through the merge.
        assert result.stats is not None
        assert result.stats.points == serial_result.explored

    def test_explicit_shard_size_is_result_invariant(self, predictor, spec, space,
                                                     serial_result):
        result = ParallelDSE(
            predictor, spec, space, workers=1, top_m=TOP_M, shard_size=7
        ).run()
        assert signature(result) == signature(serial_result)

    def test_rejects_unboundable_spaces(self, predictor):
        big = get_kernel("2mm")
        big_space = build_design_space(big)
        with pytest.raises(DSEError, match="exhaustive"):
            ParallelDSE(predictor, big, big_space, workers=2).run()


# ---------------------------------------------------------------------------
# crash handling


class TestCrashRetry:
    def test_killed_worker_shard_retried_exactly_once(
        self, predictor, spec, space, serial_result, caplog
    ):
        def die_once(worker_id, shard_index, attempt):
            if shard_index == 2 and attempt == 1:
                os._exit(13)

        with caplog.at_level(logging.WARNING, logger="repro.dse.parallel"):
            result = ParallelDSE(
                predictor, spec, space, workers=2, top_m=TOP_M,
                hooks=WorkerHooks(on_shard_start=die_once),
            ).run()
        assert result.retries == 1
        assert signature(result) == signature(serial_result)
        retry_logs = [r for r in caplog.records if "retrying" in r.getMessage()]
        assert len(retry_logs) == 1
        assert "shard 2" in retry_logs[0].getMessage()

    def test_repeatedly_killed_shard_raises(self, predictor, spec, space):
        def die_always(worker_id, shard_index, attempt):
            if shard_index == 1:
                os._exit(13)

        with pytest.raises(WorkerCrashError, match="shard 1"):
            ParallelDSE(
                predictor, spec, space, workers=2, top_m=TOP_M,
                hooks=WorkerHooks(on_shard_start=die_always),
            ).run()

    def test_stalled_worker_is_killed_and_retried(
        self, predictor, spec, space, serial_result
    ):
        import time as time_mod

        def stall_once(worker_id, shard_index, attempt):
            if shard_index == 0 and attempt == 1:
                time_mod.sleep(60)

        # 3s window: the 60s stall is still detected immediately, but the
        # retried worker's first heartbeat is not racing a 1s deadline on
        # a loaded single-core runner (where it flaked).
        result = ParallelDSE(
            predictor, spec, space, workers=2, top_m=TOP_M,
            hooks=WorkerHooks(on_shard_start=stall_once),
            heartbeat_timeout_seconds=3.0,
        ).run()
        assert result.retries == 1
        assert signature(result) == signature(serial_result)

    def test_deterministic_worker_exception_is_not_retried(
        self, predictor, spec, space
    ):
        def boom(worker_id, shard_index, attempt):
            if shard_index == 0:
                raise ValueError("injected deterministic failure")

        with pytest.raises(DSEError, match="injected deterministic failure"):
            ParallelDSE(
                predictor, spec, space, workers=2, top_m=TOP_M,
                hooks=WorkerHooks(on_shard_start=boom),
            ).run()


# ---------------------------------------------------------------------------
# clock robustness: duration/deadline math must not touch the wall clock


class TestMonotonicClocks:
    def test_wall_clock_jump_does_not_trigger_stall_retry(
        self, predictor, spec, space, serial_result, monkeypatch
    ):
        """A stepped system clock must not fake (or hide) a stall.

        ``time.time`` is patched to jump hours on every read — under the
        old wall-clock stall detector every liveness check would exceed
        ``heartbeat_timeout_seconds`` and kill healthy workers (and the
        deadline check would abort the sweep).  Heartbeats and the stall
        timeout now run on ``time.monotonic``, so the run completes with
        zero retries and a bit-identical result.
        """
        import time as time_mod

        real_time = time_mod.time
        state = {"offset": 0.0}

        def jumpy_wall_clock():
            # Alternate huge forward and backward steps (NTP slam,
            # suspend/resume, manual clock set).
            state["offset"] = -state["offset"] + (7200.0 if state["offset"] <= 0 else 0.0)
            return real_time() + state["offset"]

        monkeypatch.setattr(time_mod, "time", jumpy_wall_clock)
        result = ParallelDSE(
            predictor, spec, space, workers=2, top_m=TOP_M,
            heartbeat_timeout_seconds=5.0,
        ).run()
        assert result.retries == 0
        assert signature(result) == signature(serial_result)

    def test_backwards_wall_clock_step_does_not_stall_serial_sweep(
        self, predictor, spec, space, serial_result, monkeypatch
    ):
        """The in-process deadline check is monotonic too: a wall clock
        stepped far backwards (which once meant 'never out of time') and
        then far forwards (which once meant 'already out of time') leaves
        the sweep untouched."""
        import itertools
        import time as time_mod

        real_time = time_mod.time
        offsets = itertools.cycle([-86_400.0, 86_400.0])
        monkeypatch.setattr(time_mod, "time", lambda: real_time() + next(offsets))
        result = ParallelDSE(predictor, spec, space, workers=1, top_m=TOP_M).run()
        assert signature(result) == signature(serial_result)
        assert result.explored == serial_result.explored

    def test_heartbeat_lag_and_retry_instruments_update(
        self, predictor, spec, space
    ):
        from repro.obs import REGISTRY

        lag = REGISTRY.histogram("dse.heartbeat_lag_seconds")
        completed = REGISTRY.counter("dse.shards_completed")
        lag0, done0 = lag.count, completed.value
        result = ParallelDSE(predictor, spec, space, workers=2, top_m=TOP_M).run()
        assert completed.value - done0 == result.shards
        assert lag.count > lag0
        # Worker monotonic stamps share the parent's epoch under fork,
        # so observed lag is a sane small non-negative queue delay.
        assert 0.0 <= lag.quantile(1.0) < 60.0


# ---------------------------------------------------------------------------
# checkpoint / resume


class TestCheckpointResume:
    @pytest.fixture()
    def ckpt(self, tmp_path):
        return str(tmp_path / "dse.ckpt.json")

    def _interrupted_run(self, predictor, spec, space, ckpt, shards_before_kill=2):
        """Run in-process until ``shards_before_kill`` shards are journalled."""
        done = []

        def abort_after(worker_id, shard_index, attempt):
            if len(done) >= shards_before_kill:
                raise _Abort()
            done.append(shard_index)

        with pytest.raises(_Abort):
            ParallelDSE(
                predictor, spec, space, workers=1, top_m=TOP_M,
                checkpoint_path=ckpt,
                hooks=WorkerHooks(on_shard_start=abort_after),
            ).run()
        return done

    def test_resume_skips_completed_shards(
        self, predictor, spec, space, serial_result, ckpt
    ):
        finished = self._interrupted_run(predictor, spec, space, ckpt)
        reran = []
        result = ParallelDSE(
            predictor, spec, space, workers=1, top_m=TOP_M,
            checkpoint_path=ckpt, resume=True,
            hooks=WorkerHooks(on_shard_start=lambda w, s, a: reran.append(s)),
        ).run()
        assert result.shards_resumed == len(finished)
        assert not set(reran) & set(finished)
        assert len(reran) == result.shards - len(finished)
        assert signature(result) == signature(serial_result)

    def test_journal_format(self, predictor, spec, space, ckpt):
        self._interrupted_run(predictor, spec, space, ckpt)
        with open(ckpt) as handle:
            journal = json.load(handle)
        assert journal["schema_version"] == 1
        assert journal["kernel"] == KERNEL
        assert journal["total_points"] > 0
        assert sorted(journal["completed"]) == ["0", "1"]
        shard = journal["completed"]["0"]
        assert shard["attempts"] == 1
        assert shard["explored"] > 0
        candidate = shard["top"][0]
        assert set(candidate) == {"point", "prediction"}
        # The running Pareto front is journalled alongside the shards.
        assert isinstance(journal["pareto"], list) and journal["pareto"]
        roundtrip = candidate_from_payload(candidate)
        assert candidate_payload(roundtrip) == candidate

    def test_half_written_checkpoint_raises(self, predictor, spec, space, ckpt):
        self._interrupted_run(predictor, spec, space, ckpt)
        with open(ckpt) as handle:
            text = handle.read()
        with open(ckpt, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="corrupt or half-written"):
            ParallelDSE(
                predictor, spec, space, workers=1, top_m=TOP_M,
                checkpoint_path=ckpt, resume=True,
            ).run()

    def test_parameter_mismatch_raises(self, predictor, spec, space, ckpt):
        self._interrupted_run(predictor, spec, space, ckpt)
        with pytest.raises(CheckpointError, match="different run"):
            ParallelDSE(
                predictor, spec, space, workers=1, top_m=TOP_M + 1,
                checkpoint_path=ckpt, resume=True,
            ).run()

    def test_missing_checkpoint_starts_fresh(
        self, predictor, spec, space, serial_result, ckpt
    ):
        result = ParallelDSE(
            predictor, spec, space, workers=1, top_m=TOP_M,
            checkpoint_path=ckpt, resume=True,
        ).run()
        assert result.shards_resumed == 0
        assert signature(result) == signature(serial_result)
        assert os.path.exists(ckpt)

    def test_resume_requires_checkpoint_path(self, predictor, spec, space):
        with pytest.raises(DSEError, match="checkpoint_path"):
            ParallelDSE(predictor, spec, space, workers=1, resume=True)

    def test_multiprocess_run_honours_checkpoint(
        self, predictor, spec, space, serial_result, ckpt
    ):
        finished = self._interrupted_run(predictor, spec, space, ckpt)
        reran = []

        def record(worker_id, shard_index, attempt):
            reran.append(shard_index)

        result = ParallelDSE(
            predictor, spec, space, workers=2, top_m=TOP_M,
            checkpoint_path=ckpt, resume=True,
            hooks=WorkerHooks(on_shard_start=record),
        ).run()
        assert result.shards_resumed == len(finished)
        assert signature(result) == signature(serial_result)
        # reran was appended in forked children; the parent-side list stays
        # empty, so assert via the journal instead.
        journal = json.load(open(ckpt))
        assert len(journal["completed"]) == result.shards
        attempts = [entry["attempts"] for entry in journal["completed"].values()]
        assert all(a == 1 for a in attempts)

    def test_fingerprint_is_stable(self, spec, space):
        args = (spec.name, space, TOP_M, 0.8, 7, 14, 97)
        assert DSECheckpoint.fingerprint(*args) == DSECheckpoint.fingerprint(*args)
        changed = DSECheckpoint.fingerprint(spec.name, space, TOP_M, 0.8, 8, 14, 97)
        assert changed != DSECheckpoint.fingerprint(*args)


# ---------------------------------------------------------------------------
# shard-result transport


class TestShardResultPayload:
    def test_round_trip(self, predictor, spec, space):
        result = ParallelDSE(predictor, spec, space, workers=1, top_m=TOP_M).run()
        shard = ShardResult(
            index=3, top=result.top, pareto=result.pareto[:4],
            explored=result.explored, stats=result.stats, worker=1, attempts=2,
        )
        clone = ShardResult.from_payload(3, shard.to_payload())
        assert signature(clone) == signature(shard)
        assert clone.explored == shard.explored
        assert clone.attempts == 2 and clone.worker == 1
        assert clone.stats is not None
        assert clone.stats.points == shard.stats.points

    def test_malformed_payload_raises(self):
        with pytest.raises(CheckpointError, match="shard 5"):
            ShardResult.from_payload(5, {"top": [], "pareto": []})


# ---------------------------------------------------------------------------
# CLI integration


class TestParallelCLI:
    @pytest.fixture(scope="class")
    def artifact_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("artifact") / "model"
        make_predictor().save(str(path))
        return path

    def test_workers1_takes_plain_serial_path(self, artifact_dir, monkeypatch, capsys):
        import repro.dse as dse_pkg

        monkeypatch.setattr(
            dse_pkg, "ParallelDSE",
            lambda *a, **k: pytest.fail("--workers 1 must not shard"),
        )
        code = main(
            ["dse", "-k", KERNEL, "--model", str(artifact_dir), "--top", "3",
             "--workers", "1"]
        )
        assert code == 0
        assert "parallel:" not in capsys.readouterr().out

    def test_parallel_output_matches_serial(self, artifact_dir, tmp_path, capsys):
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        assert main(
            ["dse", "-k", KERNEL, "--model", str(artifact_dir), "--top", "3",
             "--output", str(serial_out)]
        ) == 0
        assert main(
            ["dse", "-k", KERNEL, "--model", str(artifact_dir), "--top", "3",
             "--workers", "2", "--output", str(parallel_out)]
        ) == 0
        serial = json.loads(serial_out.read_text())
        parallel = json.loads(parallel_out.read_text())
        assert parallel["top"] == serial["top"]
        assert parallel["pareto"] == serial["pareto"]
        assert parallel["workers"] == 2 and parallel["shards"] > 1
        assert "parallel: 2 worker(s)" in capsys.readouterr().out

    def test_resume_without_checkpoint_errors(self, artifact_dir, capsys):
        code = main(
            ["dse", "-k", KERNEL, "--model", str(artifact_dir), "--resume"]
        )
        assert code == 1
        assert "--resume requires --checkpoint" in capsys.readouterr().err
