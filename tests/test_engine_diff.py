"""Differential testing: the fused lazy engine against the eager reference.

Three layers of evidence that ``repro.nn.lazy`` computes what
``repro.nn.tensor`` computes:

1. **Per-op bit-exactness** — every executor kernel, run unfused on the
   same inputs, must match the eager op *bit for bit* (the module-level
   guarantee the engine documents).
2. **Property-based fuzzing** — seeded random op-graph programs
   (elementwise chains, broadcasts, matmuls, reductions, gathers,
   segment ops, engine-mixing reflected ops) interpreted on both
   engines, with per-dtype max-abs/max-rel error bounds from
   :mod:`repro.nn.lazy.equiv`.  Failures are *shrunk*: the harness
   greedily deletes ops while the disagreement persists and reports the
   minimal failing sequence.
3. **End-to-end forwards** — the paper's GNN models over every encoded
   kernel graph, eager vs fused, plus the predictor façade's two
   engines agreeing on :class:`Prediction` level.
"""

import numpy as np
import pytest

from repro.nn import Segments, Tensor, concat, stack_max
from repro.nn.lazy import (
    LazyTensor,
    assert_allclose,
    max_errors,
    tolerance_for,
)
from repro.nn.tensor import set_default_dtype

# ---------------------------------------------------------------------------
# Program representation: a list of (op-name, params) steps interpreted
# identically on either engine.  Params carry concrete arrays so both
# interpretations see byte-identical operands.
# ---------------------------------------------------------------------------


class Step:
    __slots__ = ("name", "params")

    def __init__(self, name, **params):
        self.name = name
        self.params = params

    def __repr__(self):
        parts = []
        for key, value in self.params.items():
            if isinstance(value, np.ndarray):
                parts.append(f"{key}=ndarray{value.shape}")
            elif isinstance(value, list):
                items = ", ".join(
                    "lazy" if v is None else f"ndarray{v.shape}" for v in value
                )
                parts.append(f"{key}=[{items}]")
            elif isinstance(value, Segments):
                parts.append(f"{key}=Segments(n={value.num_segments})")
            else:
                parts.append(f"{key}={value!r}")
        return f"{self.name}({', '.join(parts)})"


def _segments_for(rng, rows):
    """Random sorted segment ids covering ``rows`` rows."""
    num_segments = int(rng.integers(1, rows + 1))
    ids = np.sort(rng.integers(0, num_segments, size=rows))
    # Segments requires every id < num_segments; compress to the used range.
    return Segments(ids.astype(np.int64), num_segments=num_segments)


_APPLY = {
    "add_scalar": lambda t, p: t + p["value"],
    "radd": lambda t, p: Tensor(p["other"]) + t,  # reflected: eager op lazy
    "sub": lambda t, p: t - Tensor(p["other"]),
    "mul": lambda t, p: t * Tensor(p["other"]),
    "rmul": lambda t, p: Tensor(p["other"]) * t,
    "div": lambda t, p: t / Tensor(p["other"]),
    "square": lambda t, p: t * t,
    "pow_frac": lambda t, p: (t * t + 0.5).pow(p["exponent"]),
    "exp": lambda t, p: t.exp(),
    "log": lambda t, p: (t * t + 1.0).log(),
    "sqrt": lambda t, p: (t * t + 0.25).sqrt(),
    "tanh": lambda t, p: t.tanh(),
    "sigmoid": lambda t, p: t.sigmoid(),
    "relu": lambda t, p: t.relu(),
    "leaky_relu": lambda t, p: t.leaky_relu(p["alpha"]),
    "elu": lambda t, p: t.elu(p["alpha"]),
    "softmax": lambda t, p: t.softmax(axis=-1),
    "matmul": lambda t, p: t @ Tensor(p["weight"]),
    "rmatmul": lambda t, p: Tensor(p["left"]) @ t,
    "center": lambda t, p: t + t.sum(axis=0, keepdims=True) * p["scale"],
    "mean_cols": lambda t, p: t - t.mean(axis=1, keepdims=True),
    "transpose": lambda t, p: t.T,
    "flatten_restore": lambda t, p: t.reshape(-1).reshape(p["shape"]),
    "gather_rows": lambda t, p: t.gather_rows(p["index"]),
    "segment_sum": lambda t, p: t.segment_sum(p["segments"]),
    "segment_softmax": lambda t, p: t.segment_softmax(p["segments"]),
    "concat_self": lambda t, p: concat([t, Tensor(p["other"])], axis=1),
    "stack_max": lambda t, p: stack_max([t, Tensor(p["other"])]),
    # >=3 operands mixing eager sources and a lazy intermediate at a
    # random position (None marks where the lazy chain is spliced in).
    "stack_max_many": lambda t, p: stack_max(
        [t * p["scale"] if o is None else Tensor(o) for o in p["operands"]]
    ),
    "concat_many": lambda t, p: concat(
        [t * p["scale"] if o is None else Tensor(o) for o in p["operands"]],
        axis=1,
    ),
}


def _gen_step(rng, shape):
    """Draw one applicable random step for the current 2-D ``shape``."""
    rows, cols = shape
    choices = [
        "add_scalar", "radd", "sub", "mul", "rmul", "div", "square",
        "pow_frac", "exp", "log", "sqrt", "tanh", "sigmoid", "relu",
        "leaky_relu", "elu", "softmax", "center", "mean_cols",
        "flatten_restore", "segment_softmax",
    ]
    if cols <= 16:
        choices.append("concat_self")
    if cols <= 8:
        choices.append("concat_many")
    if rows > 1:
        choices += ["gather_rows", "segment_sum", "rmatmul"]
    choices += ["matmul", "stack_max", "stack_max_many", "transpose"]
    name = rng.choice(choices)

    def arr(s):
        return rng.normal(size=s)

    if name == "add_scalar":
        return Step(name, value=float(rng.normal())), shape
    if name in ("radd", "sub", "mul", "rmul"):
        other = arr((1, cols)) if rng.random() < 0.3 else arr(shape)
        return Step(name, other=other), shape
    if name == "div":
        other = rng.uniform(0.5, 1.5, size=shape) * np.where(
            rng.random(size=shape) < 0.5, -1.0, 1.0
        )
        return Step(name, other=other), shape
    if name == "pow_frac":
        return Step(name, exponent=float(rng.choice([0.5, 1.5, 2.0]))), shape
    if name in ("leaky_relu", "elu"):
        return Step(name, alpha=float(rng.uniform(0.05, 1.0))), shape
    if name == "matmul":
        out = int(rng.integers(1, 17))
        return Step(name, weight=arr((cols, out))), (rows, out)
    if name == "rmatmul":
        out = int(rng.integers(1, 17))
        return Step(name, left=arr((out, rows))), (out, cols)
    if name == "center":
        return Step(name, scale=-1.0 / rows), shape
    if name == "transpose":
        return Step(name), (cols, rows)
    if name == "flatten_restore":
        return Step(name, shape=shape), shape
    if name == "gather_rows":
        new_rows = int(rng.integers(1, rows + 1))
        index = rng.integers(0, rows, size=new_rows).astype(np.int64)
        return Step(name, index=index), (new_rows, cols)
    if name == "segment_sum":
        seg = _segments_for(rng, rows)
        return Step(name, segments=seg), (seg.num_segments, cols)
    if name == "segment_softmax":
        return Step(name, segments=_segments_for(rng, rows)), shape
    if name == "concat_self":
        return Step(name, other=arr(shape)), (rows, 2 * cols)
    if name == "stack_max":
        return Step(name, other=arr(shape)), shape
    if name in ("stack_max_many", "concat_many"):
        n = int(rng.integers(3, 6))
        lazy_pos = int(rng.integers(0, n))
        operands = [None if i == lazy_pos else arr(shape) for i in range(n)]
        scale = float(rng.uniform(0.5, 2.0))
        out_shape = shape if name == "stack_max_many" else (rows, n * cols)
        return Step(name, operands=operands, scale=scale), out_shape
    # param-less elementwise ops: square/exp/log/sqrt/tanh/sigmoid/relu/
    # softmax/mean_cols preserve shape
    return Step(name), shape


def gen_program(seed, length=8):
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(2, 12))
    cols = int(rng.integers(1, 12))
    x0 = rng.normal(size=(rows, cols))
    steps, shape = [], (rows, cols)
    for _ in range(length):
        step, shape = _gen_step(rng, shape)
        steps.append(step)
    return x0, steps


def run_program(x0, steps, engine):
    t = LazyTensor(x0) if engine == "fused" else Tensor(x0)
    for step in steps:
        t = _APPLY[step.name](t, step.params)
    return np.array(t.data, copy=True)


# ---------------------------------------------------------------------------
# Shrinking: greedily delete steps while the program still disagrees.
# ---------------------------------------------------------------------------


def _disagrees(x0, steps, rtol, atol):
    try:
        eager = run_program(x0, steps, "eager")
        fused = run_program(x0, steps, "fused")
    except Exception:
        return False  # deletion broke shape validity: not a valid shrink
    if eager.shape != fused.shape:
        return True
    return not np.allclose(fused, eager, rtol=rtol, atol=atol, equal_nan=True)


def shrink_program(x0, steps, rtol, atol):
    """Minimal failing subsequence under greedy single-step deletion."""
    current = list(steps)
    changed = True
    while changed:
        changed = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1 :]
            if _disagrees(x0, candidate, rtol, atol):
                current = candidate
                changed = True
                break
    return current


def _report_failure(x0, steps, dtype):
    rtol, atol = tolerance_for(dtype)
    minimal = shrink_program(x0, steps, rtol, atol)
    eager = run_program(x0, minimal, "eager")
    fused = run_program(x0, minimal, "fused")
    abs_err, rel_err = max_errors(fused, eager)
    lines = [
        f"engines disagree for dtype={np.dtype(dtype).name} "
        f"(max_abs={abs_err:.3e}, max_rel={rel_err:.3e}, "
        f"rtol={rtol}, atol={atol})",
        f"minimal failing program ({len(minimal)} of {len(steps)} ops), "
        f"input shape {x0.shape}:",
    ]
    lines += [f"  {i}: {step!r}" for i, step in enumerate(minimal)]
    pytest.fail("\n".join(lines))


# ---------------------------------------------------------------------------
# 1. Per-op bit-exactness (the engine's documented unfused guarantee).
# ---------------------------------------------------------------------------

_SINGLE_OPS = [
    "add_scalar", "radd", "sub", "mul", "rmul", "div", "square", "pow_frac",
    "exp", "log", "sqrt", "tanh", "sigmoid", "relu", "leaky_relu", "elu",
    "softmax", "matmul", "rmatmul", "center", "mean_cols", "transpose",
    "flatten_restore", "gather_rows", "segment_sum", "segment_softmax",
    "concat_self", "stack_max", "stack_max_many", "concat_many",
]


class TestSingleOpBitExact:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=["f32", "f64"])
    @pytest.mark.parametrize("name", _SINGLE_OPS)
    def test_op_bitexact(self, name, dtype):
        """One op, unfused, must match eager bit for bit in both dtypes."""
        set_default_dtype(dtype)
        import zlib

        rng = np.random.default_rng(zlib.crc32(name.encode()))
        x0 = rng.normal(size=(6, 5))
        step = Step(name, **_params_for(name, rng))
        eager = run_program(x0, [step], "eager")
        fused = run_program(x0, [step], "fused")
        assert eager.dtype == fused.dtype
        np.testing.assert_array_equal(fused, eager)


def _params_for(name, rng):
    """Deterministic fallback params for ops the sampler rarely draws."""
    if name == "matmul":
        return {"weight": rng.normal(size=(5, 3))}
    if name == "rmatmul":
        return {"left": rng.normal(size=(4, 6))}
    if name in ("radd", "sub", "mul", "rmul", "stack_max", "concat_self"):
        return {"other": rng.normal(size=(6, 5))}
    if name in ("stack_max_many", "concat_many"):
        # lazy operand last: the alias-hazard position for stack_max
        operands = [rng.normal(size=(6, 5)), rng.normal(size=(6, 5)), None]
        return {"operands": operands, "scale": 2.0}
    if name == "div":
        return {"other": rng.uniform(0.5, 1.5, size=(6, 5))}
    if name == "add_scalar":
        return {"value": float(rng.normal())}
    if name == "pow_frac":
        return {"exponent": 1.5}
    if name in ("leaky_relu", "elu"):
        return {"alpha": 0.2}
    if name == "center":
        return {"scale": -1.0 / 6}
    if name == "flatten_restore":
        return {"shape": (6, 5)}
    if name == "gather_rows":
        return {"index": rng.integers(0, 6, size=4).astype(np.int64)}
    if name in ("segment_sum", "segment_softmax"):
        return {"segments": _segments_for(rng, 6)}
    return {}


# ---------------------------------------------------------------------------
# 2. Property-based fuzzing with shrinking.
# ---------------------------------------------------------------------------


class TestFuzzPrograms:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=["f32", "f64"])
    @pytest.mark.parametrize("seed", range(30))
    def test_random_program_agrees(self, seed, dtype):
        set_default_dtype(dtype)
        x0, steps = gen_program(seed)
        eager = run_program(x0, steps, "eager")
        fused = run_program(x0, steps, "fused")
        rtol, atol = tolerance_for(dtype)
        if eager.shape != fused.shape or not np.allclose(
            fused, eager, rtol=rtol, atol=atol, equal_nan=True
        ):
            _report_failure(x0, steps, dtype)

    def test_long_chain_agrees(self):
        """A 40-op chain stresses buffer reuse / in-place fusion."""
        set_default_dtype(np.float32)
        x0, steps = gen_program(seed=1234, length=40)
        eager = run_program(x0, steps, "eager")
        fused = run_program(x0, steps, "fused")
        rtol, atol = tolerance_for(np.float32)
        if not np.allclose(fused, eager, rtol=rtol, atol=atol, equal_nan=True):
            _report_failure(x0, steps, np.float32)

    def test_shared_subgraph_agrees(self):
        """Diamond reuse: one node feeding several consumers realizes once
        but must still serve every consumer correctly."""
        for dtype in (np.float32, np.float64):
            set_default_dtype(dtype)
            rng = np.random.default_rng(7)
            x0 = rng.normal(size=(8, 6))
            w = rng.normal(size=(6, 6))

            def build(t):
                h = (t @ Tensor(w)).relu()
                return (h * h.sigmoid() + h.tanh()).sum(axis=1, keepdims=True)

            eager = build(Tensor(x0)).data
            fused = build(LazyTensor(x0)).data
            assert_allclose(fused, eager, dtype=dtype, context="shared subgraph")

    def test_stack_max_eager_leading_lazy_trailing(self):
        """Regression: >=3-operand stack_max whose only dying lazy
        operand sits at index >= 2 must not be used as the in-place
        output buffer — the kernel writes maximum(mats[0], mats[1])
        into it before reading mats[2:]."""
        for dtype in (np.float32, np.float64):
            set_default_dtype(dtype)
            ones = np.ones((4, 3))
            result = stack_max(
                [Tensor(ones), Tensor(2.0 * ones), LazyTensor(5.0 * ones) * 2.0]
            )
            np.testing.assert_array_equal(
                np.asarray(result.data), np.full((4, 3), 10.0)
            )

    def test_shrinker_finds_minimal_sequence(self):
        """The shrinker itself: with a synthetic failure predicate it must
        reduce to exactly the interacting ops."""
        steps = [Step(n) for n in ("a", "b", "c", "d", "e")]

        def fails(names):
            return "b" in names and "d" in names

        current = list(steps)
        changed = True
        while changed:  # same greedy loop as shrink_program
            changed = False
            for i in range(len(current)):
                candidate = current[:i] + current[i + 1 :]
                if fails([s.name for s in candidate]):
                    current = candidate
                    changed = True
                    break
        assert [s.name for s in current] == ["b", "d"]


# ---------------------------------------------------------------------------
# 3. End-to-end: GNN forwards over every kernel graph; predictor façade.
# ---------------------------------------------------------------------------


def _small_gnn(config_name, task, seed=0):
    from dataclasses import replace

    from repro.graph.encoding import EDGE_DIM, NODE_DIM
    from repro.model import MODEL_CONFIGS, REGRESSION_OBJECTIVES, build_model

    base = MODEL_CONFIGS[config_name]
    base = replace(base, hidden=16, num_layers=2)
    objectives = REGRESSION_OBJECTIVES if task == "regression" else None
    return build_model(base.for_task(task, objectives), NODE_DIM, EDGE_DIM, seed=seed)


@pytest.fixture(scope="module")
def kernel_builder():
    from repro.explorer.database import Database
    from repro.model import GraphDatasetBuilder

    return GraphDatasetBuilder(Database())


class TestModelForwardDiff:
    @pytest.mark.parametrize("config_name", ["M3", "M4", "M5", "M6", "M7"])
    def test_gnn_variants_agree(self, config_name, kernel_builder):
        """Every GNN variant (conv type / JKN mode / pooling) agrees."""
        from repro.designspace import build_design_space
        from repro.kernels import get_kernel
        from repro.nn.data import Batch, GraphData
        from repro.nn.tensor import no_grad

        set_default_dtype(np.float32)
        enc = kernel_builder.encoded_graph("atax")
        space = build_design_space(get_kernel("atax"))
        graphs = [
            GraphData(
                x=enc.fill(point),
                edge_index=enc.edge_index,
                edge_attr=enc.edge_attr,
                kernel="atax",
            )
            for point in space.sample(__import__("random").Random(3), 4)
        ]
        model = _small_gnn(config_name, "regression")
        model.eval()
        with no_grad():
            eager = model(Batch.from_graphs(graphs)).data
            lazy_batch = Batch.from_graphs(graphs)
            lazy_batch.x = LazyTensor(lazy_batch.x)
            fused = model(lazy_batch).data
        assert_allclose(fused, eager, context=f"model {config_name}")

    def test_all_kernels_agree(self, kernel_builder):
        """One M7 forward per encoded kernel graph, eager vs fused."""
        from repro.kernels import list_kernels
        from repro.nn.data import Batch, GraphData
        from repro.nn.tensor import no_grad

        set_default_dtype(np.float32)
        kernels = list_kernels()
        assert len(kernels) >= 16
        model = _small_gnn("M7", "classification")
        model.eval()
        for kernel in kernels:
            enc = kernel_builder.encoded_graph(kernel)
            graph = GraphData(
                x=enc.x_base,
                edge_index=enc.edge_index,
                edge_attr=enc.edge_attr,
                kernel=kernel,
            )
            with no_grad():
                eager = model(Batch.from_graphs([graph])).data
                lazy_batch = Batch.from_graphs([graph])
                lazy_batch.x = LazyTensor(lazy_batch.x)
                fused = model(lazy_batch).data
            assert_allclose(fused, eager, context=f"kernel {kernel}")


class TestPredictorDiff:
    def test_predictor_engines_agree(self):
        """The façade's two engines agree at Prediction level."""
        import random

        from repro.designspace import build_design_space
        from repro.explorer import generate_database
        from repro.kernels import get_kernel
        from repro.model import TrainConfig, train_predictor
        from repro.nn.lazy import predictions_equivalent

        set_default_dtype(np.float32)
        db = generate_database(kernels=["atax"], scale=0.1, seed=0)
        predictor = train_predictor(
            db, config_name="M5", train_config=TrainConfig(epochs=2)
        )
        space = build_design_space(get_kernel("atax"))
        points = space.sample(random.Random(0), 6)
        eager = predictor.predict_batch("atax", points)
        fused = predictor.predict_batch("atax", points, engine="fused")
        problem = predictions_equivalent(fused, eager, dtype=np.float32)
        assert problem is None, problem

    def test_predictor_rejects_unknown_engine(self):
        from repro.explorer import generate_database
        from repro.model import TrainConfig, train_predictor

        db = generate_database(kernels=["atax"], scale=0.1, seed=0)
        predictor = train_predictor(
            db, config_name="M1", train_config=TrainConfig(epochs=1)
        )
        with pytest.raises(ValueError):
            predictor.predict_batch("atax", [], engine="jit")
