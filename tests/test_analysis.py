"""Tests for the loop-nest analysis (trip counts, ops, accesses, deps)."""

from repro.frontend.parser import parse_source
from repro.ir.analysis import DEFAULT_TRIP, analyze_kernel


def analyze(src, bindings=None, trip_hints=None):
    return analyze_kernel(parse_source(src), bindings, trip_hints)


class TestTripCounts:
    def test_constant_bounds(self):
        ka = analyze("void f(int a[10]) { for (int i = 0; i < 10; i++) { a[i] = 0; } }")
        loop = ka.top.loops["L0"]
        assert loop.trip_count == 10
        assert loop.is_static

    def test_strided_loop(self):
        ka = analyze("void f(int a[64]) { for (int i = 0; i < 64; i += 8) { a[i] = 0; } }")
        assert ka.top.loops["L0"].trip_count == 8

    def test_inclusive_bound(self):
        ka = analyze("void f(int a[11]) { for (int i = 0; i <= 10; i++) { a[i] = 0; } }")
        assert ka.top.loops["L0"].trip_count == 11

    def test_nonzero_start(self):
        ka = analyze("void f(int a[10]) { for (int i = 2; i < 10; i++) { a[i] = 0; } }")
        assert ka.top.loops["L0"].trip_count == 8

    def test_binding_resolved_bound(self):
        ka = analyze(
            "void f(int a[16], int n) { for (int i = 0; i < n; i++) { a[i] = 0; } }",
            bindings={"n": 12},
        )
        loop = ka.top.loops["L0"]
        assert loop.trip_count == 12
        assert loop.is_static

    def test_dynamic_bound_uses_hint(self):
        src = (
            "void f(int a[16], int b[16]) {"
            " for (int i = 0; i < 16; i++) {"
            "   int n = b[i];"
            "   for (int j = 0; j < n; j++) { a[j] = 0; }"
            " } }"
        )
        ka = analyze(src, trip_hints={"f/L1": 5})
        loop = ka.top.loops["L1"]
        assert loop.trip_count == 5
        assert not loop.is_static

    def test_dynamic_bound_default(self):
        src = (
            "void f(int a[16], int b[16]) {"
            " for (int i = 0; i < 16; i++) {"
            "   int n = b[i];"
            "   for (int j = 0; j < n; j++) { a[j] = 0; }"
            " } }"
        )
        ka = analyze(src)
        assert ka.top.loops["L1"].trip_count == DEFAULT_TRIP


class TestStructure:
    def test_nesting_depths_and_parents(self):
        src = (
            "void f(int a[4]) { for (int i = 0; i < 4; i++) {"
            " for (int j = 0; j < 4; j++) { a[j] = i; } } }"
        )
        ka = analyze(src)
        assert ka.top.loops["L0"].depth == 0
        assert ka.top.loops["L1"].depth == 1
        assert ka.top.loops["L1"].parent == "L0"
        assert ka.top.loops["L0"].children[0].label == "L1"

    def test_total_iterations(self):
        src = (
            "void f(int a[4]) { for (int i = 0; i < 4; i++) {"
            " for (int j = 0; j < 8; j++) { a[j % 4] = i; } } }"
        )
        ka = analyze(src)
        assert ka.top.loops["L0"].total_iterations() == 32

    def test_innermost_flag(self):
        src = (
            "void f(int a[4]) { for (int i = 0; i < 4; i++) {"
            " for (int j = 0; j < 4; j++) { a[j] = i; } } }"
        )
        ka = analyze(src)
        assert not ka.top.loops["L0"].is_innermost
        assert ka.top.loops["L1"].is_innermost


class TestOpCensus:
    def test_float_ops_counted(self):
        src = (
            "void f(double a[8], double b[8]) { for (int i = 0; i < 8; i++) {"
            " a[i] = a[i] * b[i] + 2.0; } }"
        )
        ka = analyze(src)
        ops = ka.top.loops["L0"].body_ops
        assert ops.fmul == 1
        assert ops.fadd == 1

    def test_int_ops_counted(self):
        src = "void f(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = i * 3 + 1; } }"
        ka = analyze(src)
        ops = ka.top.loops["L0"].body_ops
        assert ops.imul == 1
        assert ops.iadd == 1

    def test_ops_charged_to_owning_loop(self):
        src = (
            "void f(double a[8]) { for (int i = 0; i < 8; i++) {"
            " double t = 0.5 * 2.0;"
            " for (int j = 0; j < 8; j++) { a[j] += t; } } }"
        )
        ka = analyze(src)
        assert ka.top.loops["L0"].body_ops.fmul == 1
        assert ka.top.loops["L1"].body_ops.fadd == 1
        assert ka.top.loops["L1"].body_ops.fmul == 0


class TestAccessesAndDeps:
    def test_affine_access(self):
        src = (
            "void f(int a[64]) { for (int i = 0; i < 8; i++) {"
            " for (int j = 0; j < 8; j++) { a[i * 8 + j] = 0; } } }"
        )
        ka = analyze(src)
        access = ka.top.loops["L1"].accesses[0]
        assert access.dim_loops == ({"i": 8, "j": 1},)
        assert not access.is_irregular

    def test_irregular_access(self):
        src = (
            "void f(int a[8], int idx[8]) { for (int i = 0; i < 8; i++) {"
            " a[idx[i]] = 0; } }"
        )
        ka = analyze(src)
        writes = [a for a in ka.top.loops["L0"].accesses if a.is_write]
        assert writes[0].is_irregular

    def test_scalar_reduction(self):
        src = (
            "void f(double a[8], double out[1]) { double s = 0.0;"
            " for (int i = 0; i < 8; i++) { s += a[i]; } out[0] = s; }"
        )
        ka = analyze(src)
        loop = ka.top.loops["L0"]
        assert loop.carried_reductions()
        assert loop.carried_reductions()[0].is_float

    def test_array_rmw_not_carried_by_indexing_loop(self):
        # y[j] += ... inside a j-loop: the j-loop does NOT carry it.
        src = (
            "void f(double y[8], double a[8]) { for (int j = 0; j < 8; j++) {"
            " y[j] += a[j]; } }"
        )
        ka = analyze(src)
        assert not ka.top.loops["L0"].carried_reductions()

    def test_wavefront_recurrence_detected(self):
        # In-place recurrence a[i] = a[i-1] + 1 is carried by the loop.
        src = (
            "void f(int a[8]) { for (int i = 1; i < 8; i++) {"
            " a[i] = a[i - 1] + 1; } }"
        )
        ka = analyze(src)
        reds = ka.top.loops["L0"].reductions
        assert any(not r.free_vars for r in reds)

    def test_distinct_arrays_no_false_recurrence(self):
        src = (
            "void f(int a[8], int b[8]) { for (int i = 1; i < 8; i++) {"
            " a[i] = b[i - 1] + 1; } }"
        )
        ka = analyze(src)
        assert not ka.top.loops["L0"].reductions


class TestKernelSuite:
    def test_all_kernels_analyze(self):
        from repro.kernels import KERNELS

        for spec in KERNELS.values():
            analysis = spec.analysis
            assert analysis.top.all_loops(), spec.name

    def test_paper_pragma_counts(self):
        from repro.kernels import get_kernel

        expected = {
            "aes": 3, "atax": 5, "gemm-blocked": 9, "gemm-ncubed": 7,
            "mvt": 8, "spmv-crs": 3, "spmv-ellpack": 3, "stencil": 7,
            "nw": 6, "bicg": 5, "doitgen": 6, "gesummv": 4, "2mm": 14,
        }
        for name, count in expected.items():
            assert len(get_kernel(name).pragmas) == count, name

    def test_nw_recurrence_serialises(self):
        from repro.kernels import get_kernel

        ka = get_kernel("nw").analysis
        inner = ka.top.loops["L3"]
        assert any(not r.free_vars for r in inner.reductions)

    def test_spmv_irregular_vector(self):
        from repro.kernels import get_kernel

        ka = get_kernel("spmv-crs").analysis
        inner = ka.top.loops["L1"]
        irregular = [a.array for a in inner.accesses if a.is_irregular]
        assert "vec" in irregular
