"""Tests for pragma ordering, Pareto utilities, and the model-driven DSE."""

import pytest

from repro.designspace import build_design_space
from repro.dse import ModelDSE, dominates, order_pragmas, pareto_front
from repro.frontend.pragmas import PragmaKind
from repro.kernels import get_kernel
from repro.model.predictor import Prediction


class TestOrdering:
    def test_innermost_first_before_promotion(self):
        space = build_design_space(get_kernel("gemm-ncubed"))
        # Without dependency promotion the BFS order is innermost-first.
        ordered = order_pragmas(space, promote_dependencies=False)
        depths = [space.rules.loop_of(k).depth for k in ordered]
        assert depths[0] == max(depths)
        assert depths == sorted(depths, reverse=True)

    def test_dependencies_precede_dependents(self):
        space = build_design_space(get_kernel("gemm-ncubed"))
        ordered = order_pragmas(space)
        position = {k.name: i for i, k in enumerate(ordered)}
        for knob in ordered:
            for dep in space.rules.dependency_of(knob):
                if dep.name in position:
                    assert position[dep.name] < position[knob.name], (
                        f"{dep.name} must precede {knob.name}"
                    )

    def test_kind_priority_within_level(self):
        space = build_design_space(get_kernel("mvt"))
        ordered = order_pragmas(space)
        rules = space.rules
        by_level = {}
        for i, knob in enumerate(ordered):
            by_level.setdefault(rules.loop_of(knob).depth, []).append(knob)
        # Dependency promotion may pull a parent pipeline forward, but
        # within the innermost level parallel precedes tile.
        deepest = by_level[max(by_level)]
        kinds = [k.kind for k in deepest]
        if PragmaKind.PARALLEL in kinds and PragmaKind.TILE in kinds:
            assert kinds.index(PragmaKind.PARALLEL) < kinds.index(PragmaKind.TILE)

    def test_all_knobs_present_once(self):
        space = build_design_space(get_kernel("2mm"))
        ordered = order_pragmas(space)
        assert sorted(k.name for k in ordered) == sorted(k.name for k in space.knobs)


class TestPareto:
    def test_dominates(self):
        a = {"latency": 1.0, "DSP": 0.1}
        b = {"latency": 2.0, "DSP": 0.1}
        assert dominates(a, b, ("latency", "DSP"))
        assert not dominates(b, a, ("latency", "DSP"))
        assert not dominates(a, a, ("latency", "DSP"))

    def test_front_excludes_dominated(self):
        items = [
            {"latency": 1.0, "DSP": 0.9},
            {"latency": 5.0, "DSP": 0.1},
            {"latency": 5.0, "DSP": 0.9},  # dominated by both
        ]
        front = pareto_front(items, lambda x: x, keys=("latency", "DSP"))
        assert items[0] in front and items[1] in front
        assert items[2] not in front

    def test_front_of_identical_points_keeps_all(self):
        items = [{"latency": 1.0}, {"latency": 1.0}]
        assert len(pareto_front(items, lambda x: x, keys=("latency",))) == 2


class _OracleStub:
    """Predictor stub backed by the HLS tool itself (perfect oracle)."""

    def __init__(self, spec, tool):
        self.spec = spec
        self.tool = tool

    def predict_batch(self, kernel, points, valid_threshold=0.5):
        out = []
        for point in points:
            result = self.tool.synthesize(self.spec, point)
            out.append(
                Prediction(
                    valid=result.valid,
                    valid_prob=1.0 if result.valid else 0.0,
                    objectives=result.objectives,
                )
            )
        return out


@pytest.fixture(scope="module")
def oracle_dse():
    from repro.hls import MerlinHLSTool

    spec = get_kernel("spmv-ellpack")
    tool = MerlinHLSTool()
    space = build_design_space(spec)
    predictor = _OracleStub(spec, tool)
    return spec, tool, space, predictor


class TestModelDSE:
    def test_exhaustive_finds_true_optimum(self, oracle_dse):
        spec, tool, space, predictor = oracle_dse
        dse = ModelDSE(predictor, spec, space, top_m=5)
        result = dse.run(time_limit_seconds=120)
        assert result.exhaustive
        # Against a perfect oracle, the top-1 must be the true best
        # valid+fitting design of the whole space.
        truths = [
            tool.synthesize(spec, p)
            for p in space.enumerate()
        ]
        best_true = min(
            r.latency for r in truths if r.valid and r.fits(0.8)
        )
        top_true = tool.synthesize(spec, result.top[0].point)
        assert top_true.latency == best_true

    def test_top_sorted_and_unique(self, oracle_dse):
        spec, tool, space, predictor = oracle_dse
        result = ModelDSE(predictor, spec, space, top_m=5).run()
        latencies = [c.predicted_latency for c in result.top]
        assert latencies == sorted(latencies)
        keys = {str(sorted(c.point.items())) for c in result.top}
        assert len(keys) == len(result.top)

    def test_heuristic_mode_on_big_space(self):
        from repro.hls import MerlinHLSTool

        spec = get_kernel("mvt")
        tool = MerlinHLSTool()
        space = build_design_space(spec)
        predictor = _OracleStub(spec, tool)
        dse = ModelDSE(
            predictor, spec, space, top_m=5, exhaustive_limit=1000, beam_width=3
        )
        result = dse.run(time_limit_seconds=60)
        assert not result.exhaustive
        assert result.top  # finds usable designs in the huge space
        assert result.explored < space.product_size()

    def test_heuristic_improves_over_default(self):
        from repro.hls import MerlinHLSTool

        spec = get_kernel("mvt")
        tool = MerlinHLSTool()
        space = build_design_space(spec)
        predictor = _OracleStub(spec, tool)
        dse = ModelDSE(
            predictor, spec, space, top_m=3, exhaustive_limit=1000, beam_width=3
        )
        result = dse.run(time_limit_seconds=60)
        default = tool.synthesize(spec, space.default_point())
        best = tool.synthesize(spec, result.top[0].point)
        assert best.latency < default.latency


class TestParetoDSE:
    def test_archive_keeps_non_dominated(self):
        from repro.dse import ParetoArchive
        from repro.dse.search import DSECandidate

        def cand(lat, dsp):
            objectives = {"latency": lat, "DSP": dsp, "BRAM": 0.1, "LUT": 0.1, "FF": 0.1}
            return DSECandidate({"K": lat}, Prediction(True, 0.9, objectives))

        archive = ParetoArchive(capacity=10)
        assert archive.offer(cand(100, 0.5))
        assert archive.offer(cand(50, 0.9))      # trades DSP for latency
        assert not archive.offer(cand(200, 0.9))  # dominated by both
        assert len(archive.members) == 2

    def test_archive_prunes_dominated_incumbents(self):
        from repro.dse import ParetoArchive
        from repro.dse.search import DSECandidate

        def cand(lat, dsp):
            objectives = {"latency": lat, "DSP": dsp, "BRAM": 0.1, "LUT": 0.1, "FF": 0.1}
            return DSECandidate({"K": lat}, Prediction(True, 0.9, objectives))

        archive = ParetoArchive()
        archive.offer(cand(100, 0.5))
        archive.offer(cand(50, 0.4))  # dominates the first
        assert len(archive.members) == 1
        assert archive.members[0].predicted_latency == 50

    def test_capacity_evicts_crowded(self):
        from repro.dse import ParetoArchive
        from repro.dse.search import DSECandidate

        archive = ParetoArchive(capacity=4)
        for i in range(10):
            objectives = {
                "latency": 100.0 - i, "DSP": 0.1 + i * 0.05,
                "BRAM": 0.1, "LUT": 0.1, "FF": 0.1,
            }
            archive.offer(DSECandidate({"K": i}, Prediction(True, 0.9, objectives)))
        assert len(archive.members) <= 4
        # Extremes survive eviction.
        latencies = [c.predicted_latency for c in archive.frontier()]
        assert min(latencies) == 91.0
        assert max(latencies) == 100.0

    def test_pareto_dse_runs(self, oracle_dse):
        from repro.dse import ParetoDSE

        spec, tool, space, predictor = oracle_dse
        dse = ParetoDSE(predictor, spec, space, top_m=5)
        result = dse.run(time_limit_seconds=60)
        frontier = result.pareto
        assert frontier
        # Frontier members are mutually non-dominated on the objectives.
        from repro.dse import dominates

        keys = ("latency", "DSP", "BRAM", "LUT", "FF")
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not dominates(
                        a.prediction.objectives, b.prediction.objectives, keys
                    )
        # The latency champion of the frontier matches the top-1.
        assert frontier[0].predicted_latency == result.top[0].predicted_latency
