"""Tests for the batched, cached DSE evaluation pipeline.

The pipeline's contract is exact equivalence: for every kernel, the
compiled batched engine and the caching reference engine must return
``Prediction`` objects **bit-identical** to the point-by-point
``GNNDSEPredictor.predict`` path — same validity flags, same
probabilities, same objective floats.  The equivalence tests run under
the suite's float64 fixture and once more on the float32 production
path, which is the one sensitive to BLAS accumulation order.
"""

import json
import os
import random

import numpy as np
import pytest

from repro.designspace import build_design_space, point_key
from repro.dse import (
    EvaluationPipeline,
    ModelDSE,
    PipelineStats,
    SimulatedAnnealingDSE,
    UnsupportedModelError,
    surrogate_scorers,
)
from repro.explorer.database import Database
from repro.graph.encoding import EDGE_DIM, NODE_DIM
from repro.kernels import get_kernel, list_kernels
from repro.model.config import BRAM_OBJECTIVE, MODEL_CONFIGS, REGRESSION_OBJECTIVES
from repro.model.dataset import GraphDatasetBuilder
from repro.model.models import build_model
from repro.model.predictor import (
    DEFAULT_VALID_THRESHOLD,
    GNNDSEPredictor,
    Prediction,
    predictions_from_outputs,
)
from repro.nn.tensor import set_default_dtype


def make_predictor(seed: int = 0) -> GNNDSEPredictor:
    """Untrained-but-deterministic predictor stack (cheap to build)."""
    builder = GraphDatasetBuilder(Database())
    config = MODEL_CONFIGS["M7"]
    classifier = build_model(
        config.for_task("classification"), NODE_DIM, EDGE_DIM, seed=seed
    )
    regressor = build_model(
        config.for_task("regression", REGRESSION_OBJECTIVES),
        NODE_DIM, EDGE_DIM, seed=seed + 1,
    )
    bram = build_model(
        config.for_task("regression", BRAM_OBJECTIVE), NODE_DIM, EDGE_DIM, seed=seed + 2
    )
    return GNNDSEPredictor(classifier, regressor, bram, builder.normalizer, builder)


def sample_points(kernel: str, count: int, seed: int = 0):
    space = build_design_space(get_kernel(kernel))
    return space.sample(random.Random(seed), count)


@pytest.fixture(scope="module")
def predictor():
    # Module-scoped models are float64 (built under the suite fixture);
    # per-test dtype flips don't affect them.
    return make_predictor()


class TestEquivalence:
    """Satellite (a): batched+cached == point-by-point, bit-identical."""

    @pytest.mark.parametrize("kernel", list_kernels())
    def test_compiled_matches_per_point(self, predictor, kernel):
        points = sample_points(kernel, 5, seed=11)
        expected = [predictor.predict(kernel, p) for p in points]
        pipeline = EvaluationPipeline(predictor, batch_size=3, engine="compiled")
        got = pipeline.predict_batch(kernel, points)
        assert got == expected
        assert pipeline.stats.engine == "compiled"
        # batch_size 3 over 5 points exercises a mixed-capacity sweep:
        # one full chunk plus a right-sized 2-point template — and the
        # right-sizing pays no padded slots.
        assert pipeline.stats.padded_slots == 0
        # Each unique point runs the classifier pass and the regression
        # pass exactly once (duplicates are deduped into cache hits).
        assert pipeline.stats.model_points == 2 * pipeline.stats.cache_misses

    @pytest.mark.parametrize("kernel", ["spmv-ellpack", "gemm-ncubed"])
    def test_reference_engine_matches_per_point(self, predictor, kernel):
        points = sample_points(kernel, 5, seed=11)
        expected = [predictor.predict(kernel, p) for p in points]
        pipeline = EvaluationPipeline(predictor, batch_size=3, engine="reference")
        assert pipeline.predict_batch(kernel, points) == expected
        assert pipeline.stats.engine == "reference"

    def test_single_predict_matches_batch(self, predictor):
        point = sample_points("fir", 1, seed=3)[0]
        pipeline = EvaluationPipeline(predictor, batch_size=4)
        assert pipeline.predict("fir", point) == predictor.predict("fir", point)

    def test_order_preserved_with_duplicates(self, predictor):
        points = sample_points("fir", 4, seed=5)
        workload = [points[0], points[2], points[0], points[3], points[2]]
        expected = [predictor.predict("fir", p) for p in workload]
        pipeline = EvaluationPipeline(predictor, batch_size=8)
        assert pipeline.predict_batch("fir", workload) == expected

    def test_loaded_weights_keep_model_dtype(self):
        """A float32 model must predict the same values after a
        state-dict save/load round-trip: loaded parameters take the
        model's own dtype instead of silently upcasting every op."""
        set_default_dtype(np.float32)  # module fixture restores float64
        predictor = make_predictor(seed=5)
        state = predictor.classifier.state_dict()
        config = MODEL_CONFIGS["M7"].for_task("classification")
        clone = build_model(config, NODE_DIM, EDGE_DIM, seed=99)
        clone.load_state_dict(state)
        assert all(p.data.dtype == np.float32 for p in clone.parameters())
        reloaded = GNNDSEPredictor(
            clone,
            predictor.regressor,
            predictor.bram_regressor,
            predictor.normalizer,
            predictor.builder,
        )
        point = sample_points("fir", 1, seed=8)[0]
        assert reloaded.predict("fir", point) == predictor.predict("fir", point)
        pipeline = EvaluationPipeline(reloaded, batch_size=4, engine="compiled")
        assert pipeline.predict("fir", point) == predictor.predict("fir", point)

    @pytest.mark.slow
    def test_float32_production_path(self):
        """The float32 default path is the BLAS-order-sensitive one."""
        set_default_dtype(np.float32)  # module fixture restores float64
        predictor = make_predictor(seed=7)
        for kernel in ("spmv-ellpack", "gemm-ncubed"):
            points = sample_points(kernel, 6, seed=13)
            expected = [predictor.predict(kernel, p) for p in points]
            pipeline = EvaluationPipeline(predictor, batch_size=4, engine="compiled")
            assert pipeline.predict_batch(kernel, points) == expected


class TestCache:
    def test_second_call_hits_cache(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=4)
        points = sample_points("fir", 6, seed=2)
        first = pipeline.predict_batch("fir", points)
        misses = pipeline.stats.cache_misses
        second = pipeline.predict_batch("fir", points)
        assert second == first
        assert pipeline.stats.cache_misses == misses
        assert pipeline.stats.cache_hits >= len(points)

    def test_in_call_deduplication(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=8)
        point = sample_points("fir", 1, seed=4)[0]
        out = pipeline.predict_batch("fir", [point] * 5)
        assert out == [out[0]] * 5
        # One unique point: one classifier row plus one regression row.
        assert pipeline.stats.model_points == 2
        assert pipeline.stats.cache_misses == 1
        assert pipeline.stats.cache_hits == 4

    def test_cache_disabled_reevaluates(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=4, cache=False)
        points = sample_points("fir", 3, seed=2)
        first = pipeline.predict_batch("fir", points)
        assert pipeline.predict_batch("fir", points) == first
        assert pipeline.stats.cache_hits == 0

    def test_clear_cache(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=4)
        points = sample_points("fir", 3, seed=2)
        pipeline.predict_batch("fir", points)
        misses = pipeline.stats.cache_misses
        pipeline.clear_cache()
        pipeline.predict_batch("fir", points)
        assert pipeline.stats.cache_misses == 2 * misses


class TestCascade:
    def test_valid_only_objectives_consistent(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=8, cache=False)
        points = sample_points("fir", 10, seed=6)
        full = pipeline.predict_batch("fir", points, objectives_for="all")
        cascade = pipeline.predict_batch("fir", points, objectives_for="valid")
        for f, c in zip(full, cascade):
            assert c.valid == f.valid
            assert c.valid_prob == f.valid_prob
            if c.valid:
                assert c == f
            else:
                assert c.objectives is None
                assert c.latency == float("inf")
                assert not c.fits()

    def test_cascade_skip_counted(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=8, cache=False)
        points = sample_points("fir", 10, seed=6)
        predictions = pipeline.predict_batch("fir", points, objectives_for="valid")
        invalid = sum(1 for p in predictions if not p.valid)
        assert pipeline.stats.cascade_skipped == invalid

    def test_bad_objectives_for_rejected(self, predictor):
        pipeline = EvaluationPipeline(predictor)
        with pytest.raises(ValueError):
            pipeline.predict_batch("fir", sample_points("fir", 1), objectives_for="no")


class TestEngineSelection:
    def test_stub_predictor_falls_back_to_reference(self, predictor):
        class Stub:
            def predict_batch(self, kernel, points, valid_threshold=0.5):
                return predictor.predict_batch(kernel, points, valid_threshold)

        pipeline = EvaluationPipeline(Stub(), batch_size=4)
        points = sample_points("fir", 3, seed=2)
        expected = [predictor.predict("fir", p) for p in points]
        assert pipeline.predict_batch("fir", points) == expected
        assert pipeline.stats.engine == "reference"

    def test_compiled_on_unsupported_model_raises(self):
        class Stub:
            def predict_batch(self, kernel, points, valid_threshold=0.5):
                raise AssertionError("should not be reached")

        pipeline = EvaluationPipeline(Stub(), engine="compiled")
        with pytest.raises(UnsupportedModelError):
            pipeline.predict_batch("fir", sample_points("fir", 1))


class TestThresholdTieBreak:
    """Satellite (d): behaviour exactly at the classification threshold."""

    def test_probability_at_threshold_is_valid(self, predictor):
        # Equal logits put the softmax probability exactly at 0.5: the
        # inclusive tie-break must call the point valid.
        logits = np.zeros((1, 2))
        reg = np.zeros((1, len(REGRESSION_OBJECTIVES)))
        bram = np.zeros((1, 1))
        (prediction,) = predictions_from_outputs(
            logits, reg, bram, predictor.normalizer, DEFAULT_VALID_THRESHOLD
        )
        assert prediction.valid_prob == DEFAULT_VALID_THRESHOLD
        assert prediction.valid is True

    def test_repr_consistent_with_flag(self):
        at = Prediction(valid=True, valid_prob=0.5, objectives=None)
        below = Prediction(valid=False, valid_prob=0.49996, objectives=None)
        assert "valid=True p=0.5000" in repr(at)
        # A probability just under the threshold must not round across
        # it while printing valid=False: full precision kicks in.
        assert "p=0.5000" not in repr(below)
        assert "p=0.49996" in repr(below)
        assert "latency=inf" in repr(at)

    def test_candidate_latency_mirrors_prediction(self):
        from repro.dse.search import DSECandidate

        skipped = DSECandidate({"K": 1}, Prediction(False, 0.2, None))
        assert skipped.predicted_latency == float("inf")
        scored = DSECandidate(
            {"K": 1},
            Prediction(True, 0.9, {"latency": 42.0, "DSP": 0, "BRAM": 0, "LUT": 0, "FF": 0}),
        )
        assert scored.predicted_latency == 42.0

    def test_prediction_value_equality(self):
        objectives = {"latency": 1.0, "DSP": 0.1, "BRAM": 0.1, "LUT": 0.1, "FF": 0.1}
        a = Prediction(True, 0.75, dict(objectives))
        b = Prediction(True, 0.75, dict(objectives))
        assert a == b and hash(a) == hash(b)
        assert a != Prediction(True, 0.75, None)
        assert a != Prediction(False, 0.75, dict(objectives))
        assert Prediction(False, 0.1, None) == Prediction(False, 0.1, None)


class TestStats:
    def test_subtract_and_copy(self):
        total = PipelineStats(points=10, wall_seconds=2.0, cache_hits=4)
        before = PipelineStats(points=4, wall_seconds=0.5, cache_hits=1)
        delta = total - before
        assert delta.points == 6
        assert delta.wall_seconds == 1.5
        assert delta.cache_hits == 3
        snap = total.copy()
        total.points = 99
        assert snap.points == 10

    def test_rates(self):
        stats = PipelineStats(points=30, wall_seconds=2.0, cache_hits=3, cache_misses=7)
        assert stats.points_per_second() == pytest.approx(15.0)
        assert stats.cache_hit_rate() == pytest.approx(0.3)
        assert PipelineStats().points_per_second() == 0.0
        assert PipelineStats().cache_hit_rate() == 0.0

    def test_summary_mentions_engine(self):
        stats = PipelineStats(points=2, wall_seconds=1.0, engine="compiled")
        assert "compiled" in stats.summary()


class TestSearchIntegration:
    def test_model_dse_same_results_with_pipeline(self, predictor):
        spec = get_kernel("fir")
        space = build_design_space(spec)
        plain = ModelDSE(predictor, spec, space, top_m=5, use_pipeline=False).run(
            time_limit_seconds=120
        )
        piped = ModelDSE(
            predictor, spec, space, top_m=5,
            pipeline=EvaluationPipeline(predictor, batch_size=32),
        ).run(time_limit_seconds=120)
        assert [c.point for c in plain.top] == [c.point for c in piped.top]
        assert [c.predicted_latency for c in plain.top] == [
            c.predicted_latency for c in piped.top
        ]
        assert piped.stats is not None
        assert piped.stats.points > 0
        assert plain.stats is None

    def test_annealer_run_many_matches_run(self, predictor):
        space = build_design_space(get_kernel("fir"))
        pipeline = EvaluationPipeline(predictor, batch_size=16)
        scorer, batch_scorer = surrogate_scorers(pipeline, "fir")
        seeds = [3, 7]
        many = SimulatedAnnealingDSE(
            space, scorer, seed=0, batch_scorer=batch_scorer
        ).run_many(seeds, max_evals=30)
        for seed, batched in zip(seeds, many):
            solo = SimulatedAnnealingDSE(space, scorer, seed=seed).run(max_evals=30)
            assert batched.best_point == solo.best_point
            assert batched.best_score == solo.best_score
            assert batched.evaluations == solo.evaluations
            assert batched.accepted_moves == solo.accepted_moves
            assert batched.trajectory == solo.trajectory


GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "dse_top_points.json")


class TestGoldenTopPoints:
    """Satellite (c): DSEResult top-points ordering, pinned by a golden file.

    Uses the HLS simulator as a perfect oracle (fully deterministic,
    no model weights) so the golden file is stable across BLAS builds.
    Regenerate with REPRO_REGEN_GOLDEN=1 after an intentional change.
    """

    def _run(self):
        from repro.hls import MerlinHLSTool

        spec = get_kernel("spmv-ellpack")
        space = build_design_space(spec)
        tool = MerlinHLSTool()

        class Oracle:
            def predict_batch(self, kernel, points, valid_threshold=0.5):
                out = []
                for point in points:
                    result = tool.synthesize(spec, point)
                    out.append(
                        Prediction(
                            valid=result.valid,
                            valid_prob=1.0 if result.valid else 0.0,
                            objectives=result.objectives,
                        )
                    )
                return out

        dse = ModelDSE(Oracle(), spec, space, top_m=5)
        result = dse.run(time_limit_seconds=300)
        return [point_key(c.point) for c in result.top]

    def test_top_ordering_matches_golden(self):
        keys = self._run()
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
            with open(GOLDEN_PATH, "w") as handle:
                json.dump({"kernel": "spmv-ellpack", "top": keys}, handle, indent=1)
        with open(GOLDEN_PATH) as handle:
            golden = json.load(handle)
        assert keys == golden["top"]


class TestFusedEngine:
    """Golden end-to-end equivalence for ``engine="fused"``.

    The fused lazy engine is tolerance-equivalent (not bit-identical):
    what must be *identical* to eager is everything downstream of the
    floats — the top-K ordering and the Pareto front the DSE would act
    on (ISSUE acceptance), plus cascade semantics and the verification
    gate that guards the first batch per kernel.
    """

    @staticmethod
    def _orders_match(order_a, order_b, predictions, rel=1e-5):
        """Orderings may differ only by swaps of tolerance-tied latencies."""
        if order_a == order_b:
            return True
        for a, b in zip(order_a, order_b):
            if a == b:
                continue
            la, lb = predictions[a].latency, predictions[b].latency
            if not np.isclose(la, lb, rtol=rel, atol=0.0):
                return False
        return True

    @pytest.mark.parametrize("kernel", list_kernels())
    def test_topk_and_pareto_match_eager(self, predictor, kernel):
        from repro.dse import pareto_front
        from repro.nn.lazy import predictions_equivalent

        points = sample_points(kernel, 8, seed=21)
        eager = [predictor.predict(kernel, p) for p in points]
        pipeline = EvaluationPipeline(predictor, batch_size=4, engine="fused")
        fused = pipeline.predict_batch(kernel, points)
        assert pipeline.stats.engine == "fused"

        problem = predictions_equivalent(fused, eager, dtype=np.float64)
        assert problem is None, f"{kernel}: {problem}"

        def order(predictions):
            return sorted(
                range(len(points)), key=lambda i: (predictions[i].latency, i)
            )[:5]

        assert self._orders_match(order(fused), order(eager), eager), (
            f"{kernel}: fused top-K ordering diverged beyond latency ties"
        )

        def front(predictions):
            ranked = [
                i for i in range(len(points)) if predictions[i].objectives is not None
            ]
            return set(
                pareto_front(ranked, lambda i: predictions[i].objectives)
            )

        assert front(fused) == front(eager), f"{kernel}: Pareto front diverged"

    def test_fused_verification_gate_runs_once_per_kernel(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=4, engine="fused")
        points = sample_points("fir", 6, seed=2)
        pipeline.predict_batch("fir", points)
        assert "fir" in pipeline._fused_verified
        # Cached results stay identical on a second call (bit-consistency
        # within one engine version).
        first = pipeline.predict_batch("fir", points)
        assert pipeline.predict_batch("fir", points) == first

    def test_fused_uncached_is_deterministic(self, predictor):
        """Same batch twice with no cache: bit-identical predictions."""
        pipeline = EvaluationPipeline(
            predictor, batch_size=4, engine="fused", cache=False
        )
        points = sample_points("gemm-ncubed", 5, seed=3)
        assert pipeline.predict_batch("gemm-ncubed", points) == pipeline.predict_batch(
            "gemm-ncubed", points
        )

    def test_fused_cascade_consistent(self, predictor):
        pipeline = EvaluationPipeline(predictor, batch_size=8, engine="fused", cache=False)
        points = sample_points("fir", 10, seed=6)
        full = pipeline.predict_batch("fir", points, objectives_for="all")
        cascade = pipeline.predict_batch("fir", points, objectives_for="valid")
        for f, c in zip(full, cascade):
            assert c.valid == f.valid
            assert c.valid_prob == f.valid_prob
            if c.valid:
                assert c == f
            else:
                assert c.objectives is None

    def test_fused_on_mlp_predictor_raises(self):
        config = MODEL_CONFIGS["M1"]
        builder = GraphDatasetBuilder(Database())
        classifier = build_model(
            config.for_task("classification"), NODE_DIM, EDGE_DIM, seed=0
        )
        regressor = build_model(
            config.for_task("regression", REGRESSION_OBJECTIVES),
            NODE_DIM, EDGE_DIM, seed=1,
        )
        bram = build_model(
            config.for_task("regression", BRAM_OBJECTIVE), NODE_DIM, EDGE_DIM, seed=2
        )
        mlp_predictor = GNNDSEPredictor(
            classifier, regressor, bram, builder.normalizer, builder
        )
        pipeline = EvaluationPipeline(mlp_predictor, engine="fused")
        with pytest.raises(UnsupportedModelError):
            pipeline.predict_batch("fir", sample_points("fir", 2))

    def test_verification_gate_catches_divergence(self, predictor):
        """A predictor whose reference path disagrees with its own models
        must trip the first-batch equivalence gate."""
        from repro.nn.lazy import EngineEquivalenceError

        class LyingPredictor(GNNDSEPredictor):
            def predict_batch(self, kernel, points, valid_threshold=0.5, engine="eager"):
                out = super().predict_batch(kernel, points, valid_threshold, engine)
                return [
                    Prediction(p.valid, min(1.0, p.valid_prob * 0.5 + 0.49), p.objectives)
                    for p in out
                ]

        liar = LyingPredictor(
            predictor.classifier,
            predictor.regressor,
            predictor.bram_regressor,
            predictor.normalizer,
            predictor.builder,
        )
        pipeline = EvaluationPipeline(liar, batch_size=4, engine="fused")
        with pytest.raises(EngineEquivalenceError):
            pipeline.predict_batch("fir", sample_points("fir", 4, seed=9))

    @pytest.mark.slow
    def test_fused_float32_production_path(self):
        """Float32 is the production dtype and the tolerance-critical one."""
        from repro.nn.lazy import predictions_equivalent

        set_default_dtype(np.float32)  # module fixture restores float64
        predictor = make_predictor(seed=7)
        for kernel in ("spmv-ellpack", "gemm-ncubed"):
            points = sample_points(kernel, 6, seed=13)
            eager = [predictor.predict(kernel, p) for p in points]
            pipeline = EvaluationPipeline(predictor, batch_size=4, engine="fused")
            fused = pipeline.predict_batch(kernel, points)
            problem = predictions_equivalent(fused, eager, dtype=np.float32)
            assert problem is None, f"{kernel}: {problem}"
