"""Tests for the budgeted search strategies, the racer, and hypervolume.

The contracts under test:

- **Budget accounting**: a query is one *distinct* design point through
  the surrogate; memo revisits are free; no strategy — and no race —
  can ever spend past the shared :class:`QueryBudget`.
- **Seed determinism**: the same seed replays the RL explorer's edit
  trajectory and the racer's budget ledger bit-for-bit.
- **Hypervolume**: the exact WFG recursion against hand-computable
  fronts, plus the scale-free normalised comparison.
- **Wiring**: ``--strategy``/``budget`` through the service layer and
  the ``race`` field of the result payload.
"""

import math
import random

import numpy as np
import pytest

from repro.designspace import build_design_space, point_key
from repro.dse import (
    PARETO_KEYS,
    BudgetedEvaluator,
    EvaluationPipeline,
    QueryBudget,
    StrategyRacer,
    build_strategy,
    hypervolume,
    normalized_hypervolume,
    reference_point,
    run_race,
)
from repro.dse.rl import (
    RLExplorer,
    action_count,
    action_mask,
    apply_action,
    feature_dim,
    point_features,
)
from repro.errors import NNError, ReproError
from repro.kernels import get_kernel
from repro.nn.distributions import MaskedCategorical
from repro.nn.tensor import Tensor
from tests.test_pipeline import make_predictor

KERNEL = "fir"
STRATEGIES = ("random", "greedy", "sa", "rl")


@pytest.fixture(scope="module")
def predictor():
    return make_predictor()


@pytest.fixture()
def harness(predictor):
    spec = get_kernel(KERNEL)
    space = build_design_space(spec)

    def build(budget: int):
        pipeline = EvaluationPipeline(predictor)
        return BudgetedEvaluator(pipeline, spec, space, QueryBudget(budget))

    return build


class TestQueryBudget:
    def test_charge_and_remaining(self):
        budget = QueryBudget(10)
        budget.charge(4)
        assert (budget.spent, budget.remaining, budget.exhausted) == (4, 6, False)
        budget.charge(6)
        assert budget.exhausted

    def test_overrun_raises(self):
        budget = QueryBudget(3)
        budget.charge(3)
        with pytest.raises(ReproError, match="overrun"):
            budget.charge(1)

    def test_invalid_limit(self):
        with pytest.raises(ReproError):
            QueryBudget(0)


class TestBudgetedEvaluator:
    def test_memo_revisits_are_free(self, harness):
        evaluator = harness(50)
        points = evaluator.space.sample(random.Random(0), 5)
        evaluator.evaluate(points)
        assert evaluator.queries == 5
        again, novel = evaluator.evaluate(points)
        assert evaluator.queries == 5  # all memo hits, no charge
        assert all(c is not None for c in again)
        assert not any(novel)  # nothing re-enters the front

    def test_duplicate_points_in_one_batch_charge_once(self, harness):
        evaluator = harness(50)
        point = evaluator.space.default_point()
        candidates, novel = evaluator.evaluate([point, dict(point), dict(point)])
        assert evaluator.queries == 1
        assert sum(novel) <= 1  # novelty flagged at most on first occurrence
        assert all(c is not None for c in candidates)

    def test_truncates_to_remaining_budget(self, harness):
        evaluator = harness(3)
        points = evaluator.space.sample(random.Random(1), 8)
        candidates, _ = evaluator.evaluate(points)
        assert evaluator.queries == 3
        assert evaluator.budget.exhausted
        scored = [c for c in candidates if c is not None]
        assert len(scored) == 3  # dropped tail comes back as None


class TestStrategies:
    @pytest.mark.parametrize("name", STRATEGIES)
    def test_step_respects_grant_and_budget(self, harness, name):
        evaluator = harness(25)
        strategy = build_strategy(name, evaluator, seed=3)
        outcome = strategy.step(10)
        assert 0 < outcome.queries <= 25
        assert evaluator.budget.spent <= 25
        # A second grant keeps accumulating but can never overrun.
        strategy.step(100)
        assert evaluator.budget.spent <= 25

    @pytest.mark.parametrize("name", STRATEGIES)
    def test_exhausting_a_tiny_space_stalls_cleanly(self, predictor, name):
        spec = get_kernel("spmv-crs")  # 27-point space
        space = build_design_space(spec)
        evaluator = BudgetedEvaluator(
            EvaluationPipeline(predictor), spec, space, QueryBudget(100)
        )
        strategy = build_strategy(name, evaluator, seed=0)
        for _ in range(20):
            outcome = strategy.step(50)
            if outcome.stalled:
                break
        assert evaluator.budget.spent <= space.size()

    def test_unknown_strategy(self, harness):
        with pytest.raises(ReproError, match="unknown search strategy"):
            build_strategy("gradient-descent", harness(10), seed=0)


class TestRLExplorer:
    def test_feature_and_action_shapes(self):
        space = build_design_space(get_kernel(KERNEL))
        point = space.default_point()
        assert point_features(space, point).shape == (feature_dim(space),)
        mask = action_mask(space, point)
        assert mask.shape == (action_count(space),)
        assert mask.any()

    def test_apply_action_steps_one_knob(self):
        space = build_design_space(get_kernel(KERNEL))
        point = space.default_point()
        mask = action_mask(space, point)
        action = int(np.nonzero(mask)[0][0])
        edited = apply_action(space, point, action)
        assert point_key(edited) != point_key(point)

    def test_seed_determinism_trajectory_identical(self, harness):
        def run(seed):
            evaluator = harness(40)
            explorer = build_strategy("rl", evaluator, seed=seed)
            explorer.step(40)
            return explorer.trajectory, evaluator.budget.spent

        # Same seed: identical edit trajectory and identical ledger.
        t1, q1 = run(7)
        t2, q2 = run(7)
        assert t1 == t2
        assert q1 == q2
        assert len(t1) > 0
        # Different seed: the trajectory actually depends on the seed.
        t3, _ = run(8)
        assert t1 != t3

    def test_policy_updates_happen(self, harness):
        evaluator = harness(60)
        explorer = RLExplorer(evaluator, seed=1, episodes=4, horizon=3)
        explorer.step(60)
        assert explorer.updates >= 1


class TestRacer:
    def test_never_exceeds_shared_budget(self, harness):
        evaluator = harness(30)
        racer = StrategyRacer(evaluator, STRATEGIES, round_budget=8, seed=0)
        result = racer.run()
        assert result.queries <= 30
        assert evaluator.budget.spent == result.queries
        # The ledger accounts for every spent query.
        assert sum(r.queries for r in result.rounds) == result.queries
        assert sum(o.queries for o in result.totals.values()) == result.queries

    def test_ledger_bit_reproducible(self, predictor):
        spec = get_kernel(KERNEL)
        space = build_design_space(spec)

        def run():
            result = run_race(
                EvaluationPipeline(predictor), spec, space, budget=35, seed=11
            )
            return (
                result.ledger(),
                [point_key(c.point) for c in result.top],
                [point_key(c.point) for c in result.pareto],
            )

        assert run() == run()

    def test_duplicate_arms_rejected(self, harness):
        with pytest.raises(ReproError, match="duplicate"):
            StrategyRacer(harness(10), ("sa", "sa"), seed=0)

    def test_as_dse_result_payload(self, harness):
        from repro.serve.schemas import dse_result_payload

        evaluator = harness(20)
        result = StrategyRacer(evaluator, ("sa", "random"), seed=0).run()
        payload = dse_result_payload(result.as_dse_result())
        assert payload["strategy"] == "race"
        assert payload["race"]["queries"] == result.queries
        assert payload["race"]["rounds"] == result.ledger()
        assert set(payload["race"]["strategies"]) == {"sa", "random"}

    def test_beam_payload_defaults(self, predictor):
        from repro.dse import ModelDSE
        from repro.serve.schemas import dse_result_payload

        spec = get_kernel(KERNEL)
        space = build_design_space(spec)
        result = ModelDSE(predictor, spec, space, top_m=3).run()
        payload = dse_result_payload(result)
        assert payload["strategy"] == "beam"
        assert payload["race"] is None


class TestServiceStrategies:
    def test_dse_top_race(self, predictor):
        from repro.serve import PredictorService

        with PredictorService(predictor, batch_size=8) as service:
            payload = service.dse_top(
                KERNEL, top=3, strategy="race", budget=25, seed=4
            )
        assert payload["strategy"] == "race"
        assert payload["race"]["queries"] <= 25
        assert len(payload["top"]) <= 3
        assert payload["race"]["rounds"]

    def test_dse_top_rejects_bad_strategy_and_budget(self, predictor):
        from repro.errors import ServeError
        from repro.serve import PredictorService

        with PredictorService(predictor, batch_size=8) as service:
            with pytest.raises(ServeError, match="unknown strategy"):
                service.dse_top(KERNEL, strategy="bogus")
            with pytest.raises(ServeError, match="budget"):
                service.dse_top(KERNEL, strategy="race", budget=0)
            with pytest.raises(ServeError, match="serially"):
                service.dse_top(KERNEL, strategy="race", budget=10, workers=2)


class TestMaskedCategorical:
    def test_masked_actions_have_zero_probability(self):
        logits = Tensor(np.zeros((2, 4)))
        mask = np.array([[True, False, True, False], [False, True, True, True]])
        dist = MaskedCategorical(logits, mask)
        probs = dist.probs
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs[~mask] == 0.0)

    def test_sample_is_deterministic_and_feasible(self):
        rng_logits = np.random.default_rng(0).normal(size=(6, 5))
        mask = np.ones((6, 5), dtype=bool)
        mask[:, 0] = False
        dist = MaskedCategorical(Tensor(rng_logits), mask)
        a1 = dist.sample(random.Random(42))
        a2 = dist.sample(random.Random(42))
        assert np.array_equal(a1, a2)
        assert np.all(mask[np.arange(6), a1])

    def test_log_prob_matches_probs_and_backward_runs(self):
        logits = Tensor(
            np.random.default_rng(1).normal(size=(3, 4)), requires_grad=True
        )
        dist = MaskedCategorical(logits)
        actions = np.array([0, 2, 3])
        log_probs = dist.log_prob(actions)
        expected = np.log(dist.probs[np.arange(3), actions])
        assert np.allclose(log_probs.data, expected)
        log_probs.sum().backward()
        assert logits.grad is not None

    def test_entropy_of_uniform(self):
        dist = MaskedCategorical(Tensor(np.zeros((1, 8))))
        assert np.allclose(dist.entropy().data, math.log(8))

    def test_row_without_feasible_action_rejected(self):
        with pytest.raises(NNError, match="no feasible action"):
            MaskedCategorical(
                Tensor(np.zeros((1, 3))), np.zeros((1, 3), dtype=bool)
            )


class TestHypervolume:
    def test_single_point_rectangle(self):
        assert hypervolume([[0.25, 0.5]], [1.0, 1.0]) == pytest.approx(0.375)

    def test_two_point_staircase(self):
        # Union of [0.2,1]x[0.6,1] and [0.6,1]x[0.2,1] minus the overlap.
        hv = hypervolume([[0.2, 0.6], [0.6, 0.2]], [1.0, 1.0])
        assert hv == pytest.approx(0.8 * 0.4 + 0.4 * 0.8 - 0.4 * 0.4)

    def test_dominated_points_do_not_change_volume(self):
        base = hypervolume([[0.2, 0.6], [0.6, 0.2]], [1.0, 1.0])
        with_dominated = hypervolume(
            [[0.2, 0.6], [0.6, 0.2], [0.7, 0.7], [0.2, 0.6]], [1.0, 1.0]
        )
        assert with_dominated == pytest.approx(base)

    def test_points_beyond_reference_are_clipped(self):
        assert hypervolume([[2.0, 2.0]], [1.0, 1.0]) == 0.0

    def test_three_objectives(self):
        assert hypervolume([[0.5, 0.5, 0.5]], [1.0, 1.0, 1.0]) == pytest.approx(0.125)

    def test_normalised_comparison_prefers_superset_front(self):
        front_a = [{"latency": 10.0, "DSP": 0.5}, {"latency": 30.0, "DSP": 0.1}]
        front_b = front_a + [{"latency": 20.0, "DSP": 0.2}]
        bounds = reference_point([front_a, front_b], ("latency", "DSP"))
        keys = ("latency", "DSP")
        hv_a = normalized_hypervolume(front_a, bounds, keys)
        hv_b = normalized_hypervolume(front_b, bounds, keys)
        assert 0.0 < hv_a < hv_b <= 1.0

    def test_empty_front_scores_zero(self):
        bounds = reference_point([[]], PARETO_KEYS)
        assert normalized_hypervolume([], bounds, PARETO_KEYS) == 0.0
