"""Tests for HLS result reports and the extra kernels' behaviours."""

import pytest

from repro.designspace import build_design_space
from repro.frontend.pragmas import PipelineOption as P
from repro.hls import MerlinHLSTool
from repro.kernels import EXTRA_KERNEL_NAMES, get_kernel


@pytest.fixture(scope="module")
def tool():
    return MerlinHLSTool()


class TestPrettyReport:
    def test_contains_all_sections(self, tool):
        spec = get_kernel("gemm-ncubed")
        result = tool.baseline(spec)
        text = result.pretty()
        assert "gemm-ncubed" in text
        assert "PASS" in text
        assert "loop schedule" in text
        assert "L0" in text and "L2" in text

    def test_invalid_marked(self, tool):
        spec = get_kernel("mvt")
        space = build_design_space(spec)
        point = space.default_point()
        for knob in space.knobs:
            if knob.kind.keyword == "parallel":
                point[knob.name] = max(int(c) for c in knob.candidates)
        result = tool.synthesize(spec, point)
        if not result.valid:
            assert "FAIL" in result.pretty()

    def test_nested_indentation(self, tool):
        spec = get_kernel("gemm-blocked")
        text = tool.baseline(spec).pretty()
        lines = [l for l in text.split("\n") if "/L" in l]
        # Inner loops are indented deeper than outer ones.
        indent = {l.split("/L")[1][0]: len(l) - len(l.lstrip()) for l in lines}
        assert indent["4"] > indent["0"]


class TestExtraKernels:
    def test_registered(self):
        assert set(EXTRA_KERNEL_NAMES) == {"fir", "md-knn", "syrk"}

    @pytest.mark.parametrize("name", ["fir", "md-knn", "syrk"])
    def test_full_pipeline(self, name, tool):
        from repro.graph import encode_kernel

        spec = get_kernel(name)
        enc = encode_kernel(spec)
        assert enc.num_nodes > 30
        space = build_design_space(spec)
        result = tool.synthesize(spec, space.default_point())
        assert result.latency > 0

    def test_extras_not_in_experiment_splits(self):
        from repro.kernels import TRAINING_KERNELS, UNSEEN_KERNELS

        for name in EXTRA_KERNEL_NAMES:
            assert name not in TRAINING_KERNELS
            assert name not in UNSEEN_KERNELS

    def test_md_knn_irregular_neighbours(self):
        spec = get_kernel("md-knn")
        inner = spec.analysis.top.loops["L1"]
        irregular = {a.array for a in inner.accesses if a.is_irregular}
        assert {"px", "py", "pz"} <= irregular

    def test_fir_unrolling_limited_by_dependence(self, tool):
        """FIR accumulates into a scalar: II stays at the adder latency."""
        spec = get_kernel("fir")
        result = tool.synthesize(
            spec, {"__PIPE__L0": P.COARSE, "__PARA__L0": 1, "__PARA__L1": 1}
        )
        inner = [l for l in result.all_loops() if l.label == "L1"]
        # The loop report for L1 exists under L0's children.
        all_labels = {l.label for l in result.all_loops()}
        assert "L0" in all_labels

    def test_syrk_symmetric_structure(self, tool):
        spec = get_kernel("syrk")
        base = tool.baseline(spec)
        space = build_design_space(spec)
        point = space.default_point()
        for knob in space.knobs:
            if knob.loop_label == "L2" and knob.kind.keyword == "pipeline":
                point[knob.name] = P.COARSE
        piped = tool.synthesize(spec, point)
        assert piped.latency < base.latency


class TestSensitivitySweep:
    def test_sweep_structure(self, tool):
        from repro.hls import sweep_kernel

        spec = get_kernel("spmv-ellpack")
        space = build_design_space(spec)
        result = sweep_kernel(spec, space, tool=tool)
        assert result.base_latency is not None
        assert len(result.knobs) == len(space.knobs)
        for knob in result.knobs:
            assert len(knob.options) == len(knob.latencies)

    def test_parallel_knob_is_sensitive(self, tool):
        from repro.hls import sweep_kernel

        spec = get_kernel("gemm-ncubed")
        space = build_design_space(spec)
        result = sweep_kernel(spec, space, tool=tool)
        para = [k for k in result.knobs if k.kind == "parallel"]
        assert any(k.sensitivity > 1.5 for k in para)

    def test_pretty_ranked(self, tool):
        from repro.hls import sweep_kernel

        spec = get_kernel("spmv-ellpack")
        space = build_design_space(spec)
        text = sweep_kernel(spec, space, tool=tool).pretty()
        assert "sensitivity sweep" in text
