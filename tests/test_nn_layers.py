"""Tests for modules, optimizers, losses, and GNN layers."""

import numpy as np
import pytest

from repro.errors import NNError
from repro.nn import (
    MLP,
    Adam,
    Batch,
    DataLoader,
    GATConv,
    GCNConv,
    GraphData,
    JumpingKnowledge,
    Linear,
    NodeAttentionPool,
    SGD,
    Sequential,
    SumPool,
    Tensor,
    TransformerConv,
    binary_accuracy,
    cross_entropy,
    f1_score,
    mse_loss,
    rmse,
)


def tiny_graph(num_nodes=5, feat=8, edge_dim=4, seed=0, label=1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(num_nodes, feat))
    # A ring plus one chord: connected, deterministic.
    src = np.arange(num_nodes)
    dst = (src + 1) % num_nodes
    edge_index = np.stack([np.concatenate([src, [0]]), np.concatenate([dst, [2]])])
    edge_attr = rng.normal(size=(edge_index.shape[1], edge_dim))
    y = {"latency": float(rng.normal()), "DSP": 0.5}
    return GraphData(x, edge_index, edge_attr, y=y, label=label, kernel=f"k{seed}")


def make_batch(n_graphs=3, **kw):
    return Batch.from_graphs([tiny_graph(seed=i, label=i % 2, **kw) for i in range(n_graphs)])


class TestModules:
    def test_linear_shapes(self, T):
        layer = Linear(8, 3)
        out = layer(T(np.zeros((5, 8))))
        assert out.shape == (5, 3)

    def test_parameters_registered(self):
        mlp = MLP([8, 16, 4])
        params = list(mlp.parameters())
        assert len(params) == 4  # two Linear layers, weight+bias each

    def test_sequential_forward(self, T):
        net = Sequential(Linear(4, 4), Linear(4, 2))
        assert net(T(np.ones((3, 4)))).shape == (3, 2)

    def test_state_dict_roundtrip(self, T):
        mlp = MLP([4, 8, 2])
        state = mlp.state_dict()
        mlp2 = MLP([4, 8, 2], rng=np.random.default_rng(99))
        mlp2.load_state_dict(state)
        x = np.random.default_rng(0).normal(size=(3, 4))
        np.testing.assert_allclose(mlp(T(x)).data, mlp2(T(x)).data)

    def test_state_dict_shape_mismatch(self):
        mlp = MLP([4, 8, 2])
        state = mlp.state_dict()
        bad = {k: v[..., :1] for k, v in state.items()}
        with pytest.raises(NNError):
            mlp.load_state_dict(bad)

    def test_mlp_requires_two_dims(self):
        with pytest.raises(NNError):
            MLP([4])


class TestOptimizers:
    def _quadratic_descent(self, optimizer_cls, **kw):
        target = np.array([3.0, -2.0])
        w = Linear(1, 2, bias=False)
        opt = optimizer_cls(w.parameters(), **kw)
        x = Tensor(np.ones((1, 1)))
        for _ in range(400):
            opt.zero_grad()
            loss = mse_loss(w(x), target[None, :])
            loss.backward()
            opt.step()
        return np.abs(w(x).data[0] - target).max()

    def test_adam_converges(self):
        assert self._quadratic_descent(Adam, lr=0.05) < 1e-3

    def test_sgd_converges(self):
        assert self._quadratic_descent(SGD, lr=0.1, momentum=0.9) < 1e-3


class TestLosses:
    def test_mse_zero_at_target(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        assert mse_loss(pred, np.array([[1.0, 2.0]])).item() == 0.0

    def test_rmse_matches_manual(self):
        assert rmse(np.array([0.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(np.sqrt(2.0))

    def test_cross_entropy_prefers_correct_class(self):
        good = cross_entropy(Tensor(np.array([[5.0, -5.0]])), np.array([0])).item()
        bad = cross_entropy(Tensor(np.array([[5.0, -5.0]])), np.array([1])).item()
        assert good < bad

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        assert logits.grad[0, 1] < 0 < logits.grad[0, 0]

    def test_binary_accuracy(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert binary_accuracy(logits, np.array([1, 0])) == 1.0

    def test_f1_all_correct(self):
        logits = np.array([[0.1, 0.9], [0.9, 0.1], [0.2, 0.8]])
        assert f1_score(logits, np.array([1, 0, 1])) == 1.0

    def test_f1_no_positives_predicted(self):
        logits = np.array([[0.9, 0.1]])
        assert f1_score(logits, np.array([1])) == 0.0


class TestBatching:
    def test_batch_offsets(self):
        batch = make_batch(3, num_nodes=5)
        assert batch.num_nodes == 15
        assert batch.num_graphs == 3
        # 6 real edges + 5 self loops per graph
        assert batch.num_edges == 3 * (6 + 5)

    def test_edges_sorted_by_dst(self):
        batch = make_batch(3)
        dst = batch.edge_segments.ids
        assert np.all(np.diff(dst) >= 0)

    def test_node_segments_partition_graphs(self):
        batch = make_batch(2, num_nodes=4)
        np.testing.assert_array_equal(batch.node_segments.counts, [4, 4])

    def test_targets_and_labels(self):
        batch = make_batch(3)
        assert batch.targets(["latency", "DSP"]).shape == (3, 2)
        np.testing.assert_array_equal(batch.labels(), [0, 1, 0])

    def test_dataloader_covers_dataset(self):
        data = [tiny_graph(seed=i) for i in range(10)]
        loader = DataLoader(data, batch_size=4, shuffle=True, seed=1)
        seen = sum(batch.num_graphs for batch in loader)
        assert seen == 10
        assert len(loader) == 3


def layer_gradcheck(layer, batch, feat=8, tol=1e-5, seed=0):
    """Numerical gradient check of d(loss)/d(x) through a conv layer."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=(batch.num_nodes, feat))
    weights = rng.normal(size=(batch.num_nodes, layer_out_dim(layer)))

    def loss_value(arr):
        out = layer(Tensor(arr), batch)
        return (out * Tensor(weights)).sum().item()

    x = Tensor(x0.copy(), requires_grad=True)
    out = layer(x, batch)
    (out * Tensor(weights)).sum().backward()
    analytic = x.grad

    eps = 1e-6
    numeric = np.zeros_like(x0)
    flat = x0.reshape(-1)
    nflat = numeric.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = loss_value(x0)
        flat[i] = orig - eps
        down = loss_value(x0)
        flat[i] = orig
        nflat[i] = (up - down) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


def layer_out_dim(layer):
    if isinstance(layer, GCNConv):
        return layer.lin.out_features
    return layer.heads * layer.head_dim


class TestConvLayers:
    def test_gcn_shapes(self, T):
        batch = make_batch(2)
        out = GCNConv(8, 16)(T(batch.x), batch)
        assert out.shape == (batch.num_nodes, 16)

    def test_gat_shapes(self, T):
        batch = make_batch(2)
        out = GATConv(8, 16, heads=4)(T(batch.x), batch)
        assert out.shape == (batch.num_nodes, 16)

    def test_transformer_shapes(self, T):
        batch = make_batch(2)
        out = TransformerConv(8, 16, heads=4, edge_dim=4)(T(batch.x), batch)
        assert out.shape == (batch.num_nodes, 16)

    def test_gcn_gradcheck(self):
        batch = make_batch(1, num_nodes=4, feat=8)
        layer_gradcheck(GCNConv(8, 6), batch)

    def test_gat_gradcheck(self):
        batch = make_batch(1, num_nodes=4, feat=8)
        layer_gradcheck(GATConv(8, 6, heads=2), batch)

    def test_transformer_gradcheck(self):
        batch = make_batch(1, num_nodes=4, feat=8)
        layer_gradcheck(TransformerConv(8, 6, heads=2, edge_dim=4), batch)

    def test_transformer_edge_features_matter(self, T):
        batch = make_batch(1)
        layer = TransformerConv(8, 16, heads=4, edge_dim=4)
        out1 = layer(T(batch.x), batch).data
        batch.edge_attr = batch.edge_attr + 1.0
        out2 = layer(T(batch.x), batch).data
        assert np.abs(out1 - out2).max() > 1e-9

    def test_heads_must_divide(self):
        with pytest.raises(NNError):
            GATConv(8, 10, heads=4)

    def test_isolated_graphs_do_not_mix(self, T):
        """Message passing must not leak across graphs in a batch."""
        g1 = tiny_graph(seed=1)
        g2 = tiny_graph(seed=2)
        layer = TransformerConv(8, 16, heads=4, edge_dim=4)
        single = layer(T(g1.x), Batch.from_graphs([g1])).data
        batched = layer(
            T(Batch.from_graphs([g1, g2]).x), Batch.from_graphs([g1, g2])
        ).data
        np.testing.assert_allclose(single, batched[: g1.num_nodes], atol=1e-10)


class TestPoolingAndJKN:
    def test_sum_pool(self, T):
        batch = make_batch(3)
        out = SumPool()(T(batch.x), batch)
        assert out.shape == (3, 8)
        np.testing.assert_allclose(out.data[0], batch.graphs[0].x.sum(axis=0))

    def test_attention_pool_shapes(self, T):
        batch = make_batch(3)
        pool = NodeAttentionPool(8)
        out = pool(T(batch.x), batch)
        assert out.shape == (3, 8)

    def test_attention_scores_normalised(self):
        batch = make_batch(2)
        pool = NodeAttentionPool(8)
        scores = pool.attention_scores(Tensor(batch.x), batch)
        first = scores[: batch.graphs[0].num_nodes].sum()
        assert first == pytest.approx(1.0)

    def test_jkn_max(self, T):
        a = T(np.array([[1.0, 4.0]]))
        b = T(np.array([[3.0, 2.0]]))
        out = JumpingKnowledge("max")([a, b])
        np.testing.assert_allclose(out.data, [[3.0, 4.0]])

    def test_jkn_last(self):
        a, b = Tensor(np.ones((1, 2))), Tensor(np.zeros((1, 2)))
        np.testing.assert_allclose(JumpingKnowledge("last")([a, b]).data, b.data)

    def test_jkn_cat(self, T):
        a, b = T(np.ones((1, 2))), T(np.zeros((1, 2)))
        assert JumpingKnowledge("cat")([a, b]).shape == (1, 4)

    def test_jkn_unknown_mode(self):
        with pytest.raises(NNError):
            JumpingKnowledge("mean")
