"""Autograd correctness: numerical gradient checks and op semantics."""

import numpy as np
import pytest

from repro.errors import NNError
from repro.nn import Segments, Tensor, concat, no_grad, stack_max


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn wrt array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(make_loss, shape, seed=0, tol=1e-5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    t = Tensor(x.copy(), requires_grad=True)
    loss = make_loss(t)
    loss.backward()
    analytic = t.grad

    def scalar(arr):
        return make_loss(Tensor(arr)).item()

    numeric = numerical_grad(scalar, x.copy())
    np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda t: ((t * 3.0 + 1.5) * t).sum(), (4, 3))

    def test_broadcast_add(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(1, 3))
        check_gradient(lambda t: (t + Tensor(other)).sum(), (4, 3))

    def test_division(self):
        check_gradient(lambda t: (1.0 / (t * t + 2.0)).sum(), (5,))

    def test_exp_log(self):
        check_gradient(lambda t: ((t * t + 1.0).log() + t.exp()).sum(), (6,))

    def test_tanh_sigmoid(self):
        check_gradient(lambda t: (t.tanh() * t.sigmoid()).sum(), (3, 3))

    def test_relu(self):
        check_gradient(lambda t: (t.relu() * 2.0).sum(), (10,), seed=3)

    def test_leaky_relu(self):
        check_gradient(lambda t: t.leaky_relu(0.2).sum(), (10,), seed=4)

    def test_elu(self):
        check_gradient(lambda t: t.elu().sum(), (10,), seed=5)

    def test_pow(self):
        check_gradient(lambda t: (t * t).pow(1.5).sum(), (4,), seed=6)


class TestMatmulAndShape:
    def test_matmul_left(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(3, 5))
        check_gradient(lambda t: (t @ Tensor(w)).sum(), (4, 3))

    def test_matmul_right(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4, 3))

        def loss(t):
            return (Tensor(a) @ t).sum()

        check_gradient(loss, (3, 5))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) * 2.0).sum(), (2, 3))

    def test_transpose(self):
        rng = np.random.default_rng(7)
        w = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t.T @ Tensor(w)).sum(), (4, 3))

    def test_concat(self):
        rng = np.random.default_rng(8)
        other = Tensor(rng.normal(size=(4, 2)))
        weights = rng.normal(size=(4, 5))
        check_gradient(
            lambda t: (concat([t, other], axis=1) * Tensor(weights)).sum(), (4, 3)
        )

    def test_mean_axis(self):
        check_gradient(lambda t: t.mean(axis=0).sum(), (5, 3))

    def test_sum_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), (4, 3))


class TestGatherSegment:
    def test_gather_rows(self):
        idx = np.array([0, 2, 2, 1])
        check_gradient(lambda t: (t.gather_rows(idx) * 1.5).sum(), (3, 4))

    def test_segment_sum(self):
        seg = Segments(np.array([0, 0, 1, 3, 3, 3]), num_segments=4)
        weights = np.random.default_rng(9).normal(size=(4, 2))
        check_gradient(
            lambda t: (t.segment_sum(seg) * Tensor(weights)).sum(), (6, 2)
        )

    def test_segment_sum_values(self, T):
        seg = Segments(np.array([0, 0, 2]), num_segments=3)
        data = np.array([[1.0], [2.0], [5.0]])
        out = T(data).segment_sum(seg)
        np.testing.assert_allclose(out.data, [[3.0], [0.0], [5.0]])

    def test_segment_softmax_sums_to_one(self, T):
        seg = Segments(np.array([0, 0, 0, 1, 1]), num_segments=2)
        t = T(np.random.default_rng(0).normal(size=(5, 1)))
        att = t.segment_softmax(seg)
        sums = att.segment_sum(seg)
        np.testing.assert_allclose(sums.data, np.ones((2, 1)), atol=1e-9)

    def test_segment_softmax_gradient(self):
        seg = Segments(np.array([0, 0, 0, 1, 1]), num_segments=2)
        weights = np.array([[1.0], [2.0], [3.0], [4.0], [5.0]])

        def loss(t):
            return (t.segment_softmax(seg) * Tensor(weights)).sum()

        check_gradient(loss, (5, 1), seed=11)

    def test_softmax_gradient(self):
        weights = np.random.default_rng(12).normal(size=(3, 4))

        def loss(t):
            return (t.softmax(axis=-1) * Tensor(weights)).sum()

        check_gradient(loss, (3, 4), seed=12)

    def test_unsorted_segments_rejected(self):
        with pytest.raises(NNError):
            Segments(np.array([1, 0]), num_segments=2)

    def test_segment_id_out_of_range_rejected(self):
        with pytest.raises(NNError):
            Segments(np.array([0, 5]), num_segments=3)


class TestStackMax:
    def test_values(self, T):
        a = T([[1.0, 5.0]])
        b = T([[3.0, 2.0]])
        out = stack_max([a, b])
        np.testing.assert_allclose(out.data, [[3.0, 5.0]])

    def test_gradient_routes_to_winner(self):
        a = Tensor([[1.0, 5.0]], requires_grad=True)
        b = Tensor([[3.0, 2.0]], requires_grad=True)
        stack_max([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0]])
        np.testing.assert_allclose(b.grad, [[1.0, 0.0]])

    def test_gradcheck(self):
        # Distinct seeds: max is not differentiable at ties.
        other = Tensor(np.random.default_rng(99).normal(size=(3, 4)))
        check_gradient(lambda t: stack_max([t, other]).sum(), (3, 4), seed=13)


class TestAutogradMechanics:
    def test_grad_accumulates_over_reuse(self):
        t = Tensor([2.0], requires_grad=True)
        (t * t + t).backward()  # d/dt = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])

    def test_no_grad_context(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad
        assert out._parents == ()

    def test_detach(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad

    def test_backward_through_diamond(self):
        t = Tensor([3.0], requires_grad=True)
        a = t * 2.0
        b = t * 4.0
        (a * b).backward()  # d/dt (8 t^2) = 16 t = 48
        np.testing.assert_allclose(t.grad, [48.0])


class TestNoGradThreadIsolation:
    """``no_grad`` is per-thread: a serving thread running inference must
    not zero out a concurrently-training thread's graph (the active
    learning loop fine-tunes while the same process serves requests)."""

    def test_no_grad_does_not_leak_across_threads(self):
        import threading

        entered = threading.Event()
        release = threading.Event()

        def hold_no_grad():
            with no_grad():
                entered.set()
                release.wait(5.0)

        holder = threading.Thread(target=hold_no_grad)
        holder.start()
        try:
            assert entered.wait(5.0)
            # While the other thread is inside no_grad, this thread
            # still records the graph.
            t = Tensor([2.0], requires_grad=True)
            out = t * 3.0
            assert out.requires_grad
            assert out._parents != ()
            out.backward()
            np.testing.assert_allclose(t.grad, [3.0])
        finally:
            release.set()
            holder.join()

    def test_no_grad_still_disables_in_its_own_thread(self):
        results = {}

        def infer():
            with no_grad():
                t = Tensor([1.0], requires_grad=True)
                results["requires_grad"] = (t * 2.0).requires_grad

        import threading

        worker = threading.Thread(target=infer)
        worker.start()
        worker.join()
        assert results["requires_grad"] is False
