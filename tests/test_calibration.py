"""Tests for predictor calibration analysis."""

import numpy as np
import pytest

from repro.model import calibrate_classifier, profile_regression, spearman


class TestSpearman:
    def test_perfect_rank_agreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman(a, a * 10 + 5) == pytest.approx(1.0)

    def test_perfect_inversion(self):
        a = np.array([1.0, 2.0, 3.0])
        assert spearman(a, -a) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=400), rng.normal(size=400)
        assert abs(spearman(a, b)) < 0.15

    def test_degenerate(self):
        assert spearman(np.array([1.0]), np.array([2.0])) == 0.0


@pytest.fixture(scope="module")
def trained():
    from repro.explorer import generate_database
    from repro.model import GraphDatasetBuilder, TrainConfig, train_predictor

    db = generate_database(kernels=["spmv-ellpack", "atax"], scale=0.15, seed=0)
    predictor = train_predictor(db, "M5", train_config=TrainConfig(epochs=5, seed=0))
    builder = GraphDatasetBuilder(db, normalizer=predictor.normalizer)
    samples = builder.build()
    return predictor, samples


class TestClassifierCalibration:
    def test_structure(self, trained):
        predictor, samples = trained
        cal = calibrate_classifier(predictor.classifier, samples, bins=5)
        assert cal.bin_counts.sum() == len(samples)
        assert 0.0 <= cal.ece <= 1.0
        assert len(cal.bin_confidence) == 5

    def test_pretty(self, trained):
        predictor, samples = trained
        text = calibrate_classifier(predictor.classifier, samples).pretty()
        assert "ECE" in text

    def test_confidences_within_bins(self, trained):
        predictor, samples = trained
        cal = calibrate_classifier(predictor.classifier, samples, bins=10)
        for i in range(10):
            if cal.bin_counts[i]:
                assert cal.bin_edges[i] - 1e-9 <= cal.bin_confidence[i] <= cal.bin_edges[i + 1] + 1e-9


class TestRegressionProfile:
    def test_per_kernel_rows(self, trained):
        predictor, samples = trained
        valid = [s for s in samples if s.label == 1]
        profile = profile_regression(predictor.regressor, valid)
        assert set(profile.per_kernel) == {"atax", "spmv-ellpack"}
        for row in profile.per_kernel.values():
            assert row["mae"] >= 0
            assert row["p90"] >= row["mae"] * 0.5  # sane quantile ordering
            assert -1.0 <= row["spearman"] <= 1.0

    def test_pretty(self, trained):
        predictor, samples = trained
        valid = [s for s in samples if s.label == 1]
        text = profile_regression(predictor.regressor, valid).pretty()
        assert "spearman" in text
        assert "atax" in text


class TestKnobImportance:
    def test_report_structure(self, trained):
        from repro.designspace import build_design_space
        from repro.kernels import get_kernel
        from repro.model import knob_importance

        predictor, _ = trained
        spec = get_kernel("atax")
        space = build_design_space(spec)
        report = knob_importance(predictor, "atax", space)
        assert len(report.knobs) == len(space.knobs)
        for knob in report.knobs:
            assert knob.base_latency > 0

    def test_ranked_by_magnitude(self, trained):
        from repro.designspace import build_design_space
        from repro.kernels import get_kernel
        from repro.model import knob_importance

        predictor, _ = trained
        space = build_design_space(get_kernel("atax"))
        ranked = knob_importance(predictor, "atax", space).ranked()
        magnitudes = [abs(k.delta) for k in ranked]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_pretty(self, trained):
        from repro.designspace import build_design_space
        from repro.kernels import get_kernel
        from repro.model import knob_importance

        predictor, _ = trained
        space = build_design_space(get_kernel("atax"))
        text = knob_importance(predictor, "atax", space).pretty()
        assert "knob importance" in text
