"""Tests for the predictive-model layer: configs, normaliser, datasets,
models M1–M7, training, and the predictor façade."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.explorer import generate_database
from repro.frontend.pragmas import PipelineOption
from repro.graph.encoding import EDGE_DIM, NODE_DIM
from repro.model import (
    MODEL_CONFIGS,
    REGRESSION_OBJECTIVES,
    GraphDatasetBuilder,
    TargetNormalizer,
    TrainConfig,
    Trainer,
    build_model,
    evaluate_classification,
    evaluate_regression,
    pragma_vector,
    train_predictor,
    train_test_split,
)
from repro.nn.data import Batch


@pytest.fixture(scope="module")
def tiny_db():
    return generate_database(kernels=["atax", "spmv-ellpack"], scale=0.12, seed=0)


@pytest.fixture(scope="module")
def tiny_builder(tiny_db):
    return GraphDatasetBuilder(tiny_db)


@pytest.fixture(scope="module")
def tiny_samples(tiny_builder):
    return tiny_builder.build()


class TestNormalizer:
    def test_max_latency_maps_to_zero(self):
        norm = TargetNormalizer().fit([100, 1000, 10])
        assert norm.transform_latency(1000) == pytest.approx(0.0)

    def test_lower_latency_higher_target(self):
        norm = TargetNormalizer().fit([100, 1000])
        assert norm.transform_latency(100) > norm.transform_latency(500)

    def test_roundtrip(self):
        norm = TargetNormalizer().fit([100, 1000])
        for latency in (10, 123, 999):
            t = norm.transform_latency(latency)
            assert norm.inverse_latency(t) == pytest.approx(latency, rel=1e-9)

    def test_utilization_passthrough(self):
        norm = TargetNormalizer().fit([100])
        obj = norm.transform({"latency": 100, "DSP": 0.4})
        assert obj["DSP"] == 0.4

    def test_unfit_raises(self):
        with pytest.raises(ModelError):
            TargetNormalizer().transform_latency(5)

    def test_fit_empty_raises(self):
        with pytest.raises(ModelError):
            TargetNormalizer().fit([])


class TestDataset:
    def test_samples_cover_database(self, tiny_db, tiny_samples):
        assert len(tiny_samples) == len(tiny_db)

    def test_valid_only_filter(self, tiny_builder, tiny_db):
        valid = tiny_builder.build(valid_only=True)
        assert len(valid) == tiny_db.stats()["valid"]
        assert all(s.label == 1 for s in valid)

    def test_targets_normalised(self, tiny_samples):
        latencies = [s.y["latency"] for s in tiny_samples if s.label == 1]
        assert min(latencies) >= 0.0

    def test_pragma_vector_layout(self):
        point = {"__PIPE__L0": PipelineOption.FINE, "__PARA__L0": 8}
        vec = pragma_vector(point, ["__PARA__L0", "__PIPE__L0"])
        assert vec.shape == (32,)
        assert vec[2 * 1] == 1.0  # __PIPE__L0 sorts second; fg code = 1.0
        assert vec[2 * 0 + 1] == pytest.approx(np.log2(8) / 6.0)

    def test_split_stratified(self, tiny_samples):
        train, test = train_test_split(tiny_samples, 0.25, seed=1)
        assert len(train) + len(test) == len(tiny_samples)
        train_kernels = {s.kernel for s in train}
        test_kernels = {s.kernel for s in test}
        assert train_kernels == test_kernels

    def test_split_disjoint(self, tiny_samples):
        train, test = train_test_split(tiny_samples, 0.25, seed=1)
        train_keys = {(s.kernel, s.point_key) for s in train}
        test_keys = {(s.kernel, s.point_key) for s in test}
        assert not train_keys & test_keys


class TestModelVariants:
    @pytest.mark.parametrize("name", list(MODEL_CONFIGS))
    def test_forward_shapes(self, name, tiny_samples, engine_batch):
        config = MODEL_CONFIGS[name].for_task("regression", REGRESSION_OBJECTIVES)
        model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        batch = engine_batch(Batch.from_graphs(tiny_samples[:6]))
        out = model(batch)
        assert out.shape == (6, len(REGRESSION_OBJECTIVES))

    def test_classification_head_shape(self, tiny_samples, engine_batch):
        config = MODEL_CONFIGS["M7"].for_task("classification")
        model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        batch = engine_batch(Batch.from_graphs(tiny_samples[:4]))
        assert model(batch).shape == (4, 2)

    def test_pragma_settings_change_output(self, tiny_builder, tiny_db, engine_batch):
        """The model must see pragma differences (same kernel graph)."""
        records = [r for r in tiny_db.for_kernel("atax")][:2]
        assert records[0].point_key != records[1].point_key
        samples = [tiny_builder.sample(r) for r in records]
        config = MODEL_CONFIGS["M7"].for_task("regression", REGRESSION_OBJECTIVES)
        model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        out = model(engine_batch(Batch.from_graphs(samples))).data
        assert np.abs(out[0] - out[1]).max() > 1e-7

    def test_unknown_config_kind_raises(self):
        from dataclasses import replace

        bad = replace(MODEL_CONFIGS["M1"], kind="nope")
        with pytest.raises(ModelError):
            build_model(bad, NODE_DIM, EDGE_DIM)

    def test_for_task_validation(self):
        with pytest.raises(ModelError):
            MODEL_CONFIGS["M7"].for_task("segmentation")


class TestTraining:
    def test_loss_decreases(self, tiny_samples):
        config = MODEL_CONFIGS["M5"].for_task("regression", REGRESSION_OBJECTIVES)
        model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        valid = [s for s in tiny_samples if s.label == 1]
        history = Trainer(TrainConfig(epochs=5, batch_size=32)).fit(model, valid)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_mlp_baseline_trains(self, tiny_samples):
        config = MODEL_CONFIGS["M1"].for_task("classification")
        model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        history = Trainer(TrainConfig(epochs=5, batch_size=32)).fit(model, tiny_samples)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_empty_training_set_raises(self):
        config = MODEL_CONFIGS["M1"].for_task("classification")
        model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        with pytest.raises(ModelError):
            Trainer().fit(model, [])

    def test_lr_decay_applied(self, tiny_samples):
        from repro.nn.optim import Adam

        config = MODEL_CONFIGS["M1"].for_task("classification")
        model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        trainer = Trainer(TrainConfig(epochs=3, lr=0.01, lr_decay=0.5))
        # Patch Adam creation observation via training then inspecting:
        trainer.fit(model, tiny_samples)
        # No crash and loss history recorded for all epochs.
        # (The optimizer is internal; decay correctness is covered by
        # the convergence tests — this guards the code path.)

    def test_early_stopping_cuts_epochs(self, tiny_samples):
        config = MODEL_CONFIGS["M1"].for_task("classification")
        model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        trainer = Trainer(TrainConfig(epochs=50, early_stop_patience=2))
        val = tiny_samples[: max(len(tiny_samples) // 5, 4)]
        history = trainer.fit(model, tiny_samples, val_data=val)
        assert len(history.train_loss) < 50

    def test_cv_returns_trained_model(self, tiny_samples):
        config = MODEL_CONFIGS["M1"].for_task("classification")
        trainer = Trainer(TrainConfig(epochs=2, folds=2))
        model = trainer.fit_cv(
            lambda seed: build_model(config, NODE_DIM, EDGE_DIM, seed=seed),
            tiny_samples,
        )
        assert model is not None

    def test_warm_start_copies_weights_without_mutating_init(self, tiny_samples):
        config = MODEL_CONFIGS["M1"].for_task("classification")
        init = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        Trainer(TrainConfig(epochs=2)).fit(init, tiny_samples)
        init_state = {k: v.copy() for k, v in init.state_dict().items()}

        # epochs=0: fit only performs the warm-start copy, proving the
        # clone starts bit-exactly from the init weights.
        clone = build_model(config, NODE_DIM, EDGE_DIM, seed=99)
        Trainer(TrainConfig(epochs=0)).fit(clone, tiny_samples, init_model=init)
        for key, value in clone.state_dict().items():
            np.testing.assert_array_equal(value, init_state[key])

        # A real fine-tune moves the clone but never touches init.
        tuned = build_model(config, NODE_DIM, EDGE_DIM, seed=99)
        history = Trainer(TrainConfig(epochs=2)).fit(
            tuned, tiny_samples, init_model=init
        )
        assert len(history.train_loss) == 2
        assert any(
            not np.array_equal(tuned.state_dict()[k], init_state[k])
            for k in init_state
        )
        for key, value in init.state_dict().items():
            np.testing.assert_array_equal(value, init_state[key])

    def test_warm_start_resumes_from_trained_loss(self, tiny_samples):
        config = MODEL_CONFIGS["M5"].for_task("regression", REGRESSION_OBJECTIVES)
        valid = [s for s in tiny_samples if s.label == 1]
        base = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        history = Trainer(TrainConfig(epochs=5)).fit(base, valid)
        clone = build_model(config, NODE_DIM, EDGE_DIM, seed=7)
        resumed = Trainer(TrainConfig(epochs=1, lr=0.0004)).fit(
            clone, valid, init_model=base
        )
        # Starting from trained weights, the first epoch's loss is far
        # below a cold start's first epoch.
        assert resumed.train_loss[0] < history.train_loss[0]

    def test_metrics_structure(self, tiny_samples):
        config = MODEL_CONFIGS["M1"].for_task("regression", REGRESSION_OBJECTIVES)
        model = build_model(config, NODE_DIM, EDGE_DIM, seed=0)
        valid = [s for s in tiny_samples if s.label == 1]
        Trainer(TrainConfig(epochs=2)).fit(model, valid)
        metrics = evaluate_regression(model, valid)
        assert set(metrics) == set(REGRESSION_OBJECTIVES)
        cls_config = MODEL_CONFIGS["M1"].for_task("classification")
        cls = build_model(cls_config, NODE_DIM, EDGE_DIM, seed=0)
        Trainer(TrainConfig(epochs=2)).fit(cls, tiny_samples)
        cls_metrics = evaluate_classification(cls, tiny_samples)
        assert 0.0 <= cls_metrics["accuracy"] <= 1.0
        assert 0.0 <= cls_metrics["f1"] <= 1.0


class TestPredictor:
    @pytest.fixture(scope="class")
    def predictor(self, tiny_db):
        return train_predictor(
            tiny_db, config_name="M5", train_config=TrainConfig(epochs=4)
        )

    def test_predict_returns_all_objectives(self, predictor):
        from repro.designspace import build_design_space
        from repro.kernels import get_kernel

        space = build_design_space(get_kernel("atax"))
        prediction = predictor.predict("atax", space.default_point())
        assert set(prediction.objectives) == {"latency", "DSP", "BRAM", "LUT", "FF"}
        assert prediction.latency > 0
        assert 0.0 <= prediction.valid_prob <= 1.0

    def test_predict_batch_matches_single(self, predictor, engine):
        from repro.designspace import build_design_space
        from repro.kernels import get_kernel

        space = build_design_space(get_kernel("atax"))
        import random

        points = space.sample(random.Random(0), 3)
        batch = predictor.predict_batch("atax", points, engine=engine)
        single = [predictor.predict("atax", p) for p in points]
        for b, s in zip(batch, single):
            assert b.latency == pytest.approx(s.latency, rel=1e-5)

    def test_unknown_config_raises(self, tiny_db):
        with pytest.raises(ModelError):
            train_predictor(tiny_db, config_name="M99")
