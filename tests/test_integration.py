"""Integration tests: the full GNN-DSE pipeline end to end (scaled down).

One shared module-scope flow: generate a small database with the three
explorers, train the M7 predictor stack, run the model-driven DSE, and
check the cross-module contracts that the paper's headline results rest
on.
"""

import numpy as np
import pytest

from repro.designspace import build_design_space
from repro.dse import ModelDSE, run_dse_rounds
from repro.explorer import generate_database
from repro.hls import MerlinHLSTool
from repro.kernels import get_kernel
from repro.model import TrainConfig, train_predictor

KERNELS = ["atax", "spmv-ellpack", "stencil"]


@pytest.fixture(scope="module")
def tool():
    return MerlinHLSTool()


@pytest.fixture(scope="module")
def database(tool):
    return generate_database(kernels=KERNELS, scale=0.25, seed=0, tool=tool)


@pytest.fixture(scope="module")
def predictor(database):
    return train_predictor(
        database, config_name="M7", train_config=TrainConfig(epochs=12, seed=0)
    )


class TestEndToEnd:
    def test_database_has_both_classes(self, database):
        stats = database.stats()
        assert 0 < stats["valid"] < stats["total"]

    def test_predictor_beats_chance_on_validity(self, database, predictor):
        from repro.model import GraphDatasetBuilder
        from repro.model.trainer import evaluate_classification

        builder = GraphDatasetBuilder(database, normalizer=predictor.normalizer)
        samples = builder.build()
        metrics = evaluate_classification(predictor.classifier, samples)
        labels = [s.label for s in samples]
        majority = max(np.mean(labels), 1 - np.mean(labels))
        assert metrics["accuracy"] >= majority - 0.05

    def test_predictor_latency_correlates_with_truth(self, database, predictor):
        records = database.valid_records("atax")[:60]
        points = [r.design_point for r in records]
        predictions = predictor.predict_batch("atax", points)
        predicted = np.log2([max(p.latency, 1.0) for p in predictions])
        truth = np.log2([r.latency for r in records])
        corr = np.corrcoef(predicted, truth)[0, 1]
        assert corr > 0.5

    def test_dse_finds_design_better_than_median(self, database, predictor, tool):
        spec = get_kernel("atax")
        space = build_design_space(spec)
        # top-10, as in the paper's flow (Section 5.3).
        dse = ModelDSE(predictor, spec, space, top_m=10)
        result = dse.run(time_limit_seconds=60)
        assert result.top
        true_results = [tool.synthesize(spec, c.point) for c in result.top]
        usable = [r.latency for r in true_results if r.valid and r.fits(0.8)]
        assert usable, "top-10 contained no valid design"
        valid_latencies = sorted(r.latency for r in database.valid_records("atax"))
        median = valid_latencies[len(valid_latencies) // 2]
        assert min(usable) < median

    def test_dse_round_adds_records(self, database, predictor, tool):
        before = len(database)
        result = run_dse_rounds(
            ["spmv-ellpack"],
            database,
            predictor_factory=lambda db: predictor,
            tool=tool,
            rounds=1,
            top_m=3,
            time_limit_seconds=30,
        )
        assert len(result.rounds) == 1
        assert len(database) >= before  # new truths committed (or cached)
        assert "spmv-ellpack" in result.rounds[0].speedup

    def test_unseen_kernel_prediction_runs(self, predictor):
        # gesummv is NOT in the 3-kernel database: transfer inference.
        spec = get_kernel("gesummv")
        space = build_design_space(spec)
        prediction = predictor.predict("gesummv", space.default_point())
        assert prediction.latency > 0
        assert all(np.isfinite(list(prediction.objectives.values())))


class TestExperimentContext:
    def test_cache_roundtrip(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(cache_dir=tmp_path, scale=0.05, epochs=2, seed=0)
        db1 = ctx.database()
        # Second context with the same cache dir loads the same DB.
        ctx2 = ExperimentContext(cache_dir=tmp_path, scale=0.05, epochs=2, seed=0)
        db2 = ctx2.database()
        assert len(db1) == len(db2)

    def test_predictor_save_load(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(cache_dir=tmp_path, scale=0.05, epochs=2, seed=0)
        p1 = ctx.predictor("M5")
        ctx2 = ExperimentContext(cache_dir=tmp_path, scale=0.05, epochs=2, seed=0)
        p2 = ctx2.predictor("M5")
        spec = get_kernel("atax")
        space = build_design_space(spec)
        point = space.default_point()
        a = p1.predict("atax", point)
        b = p2.predict("atax", point)
        assert a.latency == pytest.approx(b.latency, rel=1e-5)
        assert a.valid_prob == pytest.approx(b.valid_prob, rel=1e-5)
