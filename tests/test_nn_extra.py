"""Additional NN-stack tests: dtype switching, module mechanics, misc."""

import numpy as np
import pytest

from repro.errors import NNError
from repro.nn import (
    Adam,
    DataLoader,
    Linear,
    Module,
    Parameter,
    Segments,
    Tensor,
    no_grad,
)
from repro.nn.tensor import get_default_dtype, set_default_dtype


class TestDtypeSwitch:
    def test_default_in_tests_is_float64(self):
        # conftest switches tests to float64.
        assert get_default_dtype() is np.float64

    def test_float32_mode(self):
        set_default_dtype(np.float32)
        try:
            t = Tensor([1.0, 2.0])
            assert t.data.dtype == np.float32
            out = (t * 2.0 + 1.0).exp()
            assert out.data.dtype == np.float32
        finally:
            set_default_dtype(np.float64)

    def test_float32_training_step_works(self):
        set_default_dtype(np.float32)
        try:
            layer = Linear(4, 2)
            opt = Adam(layer.parameters(), lr=0.01)
            x = Tensor(np.ones((3, 4), dtype=np.float32))
            loss = (layer(x) * layer(x)).sum()
            loss.backward()
            opt.step()
            assert layer.weight.data.dtype == np.float32
        finally:
            set_default_dtype(np.float64)

    def test_invalid_dtype_rejected(self):
        with pytest.raises(NNError):
            set_default_dtype(np.int32)

    def test_segment_sum_preserves_dtype(self):
        set_default_dtype(np.float32)
        try:
            seg = Segments(np.array([0, 0, 1]), 2)
            data = np.ones((3, 2), dtype=np.float32)
            assert seg.sum(data).dtype == np.float32
        finally:
            set_default_dtype(np.float64)


class TestModuleMechanics:
    def test_submodule_registration(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2)
                self.b = Linear(2, 2)

            def forward(self, x):
                return self.b(self.a(x))

        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert any(n.startswith("a.") for n in names)
        assert any(n.startswith("b.") for n in names)
        assert net.num_parameters() == 2 * (4 + 2)

    def test_train_eval_propagates(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.inner = Linear(2, 2)

        net = Net()
        net.eval()
        assert not net.training
        assert not net.inner.training
        net.train()
        assert net.inner.training

    def test_zero_grad_clears(self):
        layer = Linear(3, 1)
        out = layer(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_parameter_is_trainable_tensor(self):
        p = Parameter(np.zeros((2, 2)))
        assert p.requires_grad


class TestNoGrad:
    def test_nested(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            with no_grad():
                inner = t * 2.0
            middle = t * 3.0
        outer = t * 4.0
        assert not inner.requires_grad
        assert not middle.requires_grad
        assert outer.requires_grad

    def test_no_grad_parameters_detached(self):
        layer = Linear(2, 2)
        with no_grad():
            out = layer(Tensor(np.ones((1, 2))))
        assert out._parents == ()


class TestDataLoaderDeterminism:
    def _loader_order(self, seed):
        from repro.nn import GraphData

        data = [
            GraphData(
                x=np.full((2, 3), i, dtype=float),
                edge_index=np.array([[0], [1]]),
                edge_attr=np.zeros((1, 2)),
                kernel=f"k{i}",
            )
            for i in range(10)
        ]
        loader = DataLoader(data, batch_size=3, shuffle=True, seed=seed)
        return [g.kernel for batch in loader for g in batch.graphs]

    def test_same_seed_same_order(self):
        assert self._loader_order(5) == self._loader_order(5)

    def test_different_seed_different_order(self):
        assert self._loader_order(1) != self._loader_order(2)


class TestAdamState:
    def test_skips_parameters_without_grad(self):
        a, b = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = Adam([a, b], lr=0.1)
        (Tensor(np.ones(2)) * a).sum().backward()
        opt.step()
        np.testing.assert_array_equal(b.data, np.ones(2))  # untouched
        assert not np.allclose(a.data, np.ones(2))

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.full(3, 10.0))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(3)
        opt.step()
        assert np.all(np.abs(p.data) < 10.0)


class TestLayerNorm:
    def test_normalises_rows(self):
        from repro.nn import LayerNorm

        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, scale=3.0, size=(6, 8))
        out = LayerNorm(8)(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self):
        from repro.nn import LayerNorm

        layer = LayerNorm(4)
        rng = np.random.default_rng(1)
        x0 = rng.normal(size=(3, 4))
        weights = rng.normal(size=(3, 4))

        t = Tensor(x0.copy(), requires_grad=True)
        (layer(t) * Tensor(weights)).sum().backward()
        analytic = t.grad

        eps = 1e-6
        numeric = np.zeros_like(x0)
        flat, nflat = x0.reshape(-1), numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = (layer(Tensor(x0)) * Tensor(weights)).sum().item()
            flat[i] = orig - eps
            down = (layer(Tensor(x0)) * Tensor(weights)).sum().item()
            flat[i] = orig
            nflat[i] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_affine_parameters_trainable(self):
        from repro.nn import LayerNorm

        layer = LayerNorm(4)
        assert len(list(layer.parameters())) == 2


class TestDropout:
    def test_eval_mode_identity(self):
        from repro.nn import Dropout

        layer = Dropout(0.5)
        layer.eval()
        x = np.ones((4, 4))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_training_mode_masks_and_scales(self):
        from repro.nn import Dropout

        layer = Dropout(0.5, seed=0)
        out = layer(Tensor(np.ones((200, 10)))).data
        kept = out[out != 0]
        assert 0.3 < (out != 0).mean() < 0.7
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling

    def test_expected_value_preserved(self):
        from repro.nn import Dropout

        layer = Dropout(0.3, seed=1)
        out = layer(Tensor(np.ones((500, 20)))).data
        assert abs(out.mean() - 1.0) < 0.05

    def test_invalid_probability(self):
        from repro.nn import Dropout

        with pytest.raises(NNError):
            Dropout(1.0)
