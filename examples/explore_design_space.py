#!/usr/bin/env python3
"""HLS-in-the-loop exploration (no ML): AutoDSE-style explorers on atax.

Compares the three database-generation explorers of Section 4.1 —
bottleneck-based, hybrid (bottleneck + local search), and random — on
the same evaluation budget, then prints the Pareto frontier of all
evaluated designs.  This is the "slow path" GNN-DSE exists to replace:
note the simulated tool-hours each explorer consumes.

Run:  python examples/explore_design_space.py
"""

from repro.designspace import build_design_space
from repro.dse import pareto_front
from repro.explorer import (
    BottleneckExplorer,
    Database,
    Evaluator,
    HybridExplorer,
    RandomExplorer,
)
from repro.hls import MerlinHLSTool
from repro.kernels import get_kernel

BUDGET = 60  # evaluations per explorer


def main() -> None:
    spec = get_kernel("atax")
    space = build_design_space(spec)
    tool = MerlinHLSTool()
    print(f"kernel: {spec.name} — {spec.description}")
    print(f"design space: {len(space)} knobs, {space.size():,} configurations\n")

    baseline = tool.baseline(spec)
    print(f"unoptimised design: {baseline.latency:,} cycles\n")

    database = Database()
    for explorer_cls, name in (
        (BottleneckExplorer, "bottleneck"),
        (HybridExplorer, "hybrid"),
        (RandomExplorer, "random"),
    ):
        evaluator = Evaluator(tool, database, parallelism=8)
        explorer = explorer_cls(spec, space, evaluator)
        result = explorer.run(max_evals=BUDGET)
        best = f"{result.best_latency:,}" if result.best_latency else "none found"
        speedup = (
            f"{baseline.latency / result.best_latency:.1f}x"
            if result.best_latency
            else "-"
        )
        print(
            f"{name:10s}: {result.evaluations:3d} evals, "
            f"{result.elapsed_hours:5.1f} simulated tool-hours, "
            f"best latency {best} ({speedup} vs unoptimised)"
        )

    stats = database.stats(kernel=spec.name)
    print(f"\ndatabase: {stats['total']} designs, {stats['valid']} valid")

    valid = database.valid_records(spec.name)
    front = pareto_front(valid, lambda r: r.objectives())
    front.sort(key=lambda r: r.latency)
    print(f"\nPareto frontier ({len(front)} designs):")
    print(f"{'latency':>10s} {'DSP':>6s} {'BRAM':>6s} {'LUT':>6s} {'FF':>6s}  source")
    for record in front[:12]:
        u = record.utilization
        print(
            f"{record.latency:10,} {u['DSP']:6.2f} {u['BRAM']:6.2f} "
            f"{u['LUT']:6.2f} {u['FF']:6.2f}  {record.source}"
        )


if __name__ == "__main__":
    main()
