#!/usr/bin/env python3
"""Predicted Pareto frontier of a kernel (Problem 2 of the paper).

Uses the cached experiment predictor (trained on first use) and the
multi-objective :class:`~repro.dse.ParetoDSE` to sweep a kernel's
design space once, returning both the latency top-10 and the predicted
latency-vs-DSP Pareto frontier, then verifies the frontier designs with
the (simulated) HLS tool and renders the trade-off as an ASCII scatter.

Run:  python examples/pareto_frontier.py
"""

import numpy as np

from repro.analysis import ascii_scatter
from repro.designspace import build_design_space, render_point
from repro.dse import ParetoDSE
from repro.experiments import default_context
from repro.kernels import get_kernel

KERNEL = "stencil"


def main() -> None:
    ctx = default_context()
    print("loading / training the M7 predictor (cached after first run) ...")
    predictor = ctx.predictor("M7")

    spec = get_kernel(KERNEL)
    space = build_design_space(spec)
    print(f"\nkernel: {spec.name} — {spec.description}")
    print(f"design space: {space.size():,} configurations\n")

    dse = ParetoDSE(predictor, spec, space, top_m=10, archive_capacity=32)
    result = dse.run(time_limit_seconds=180)
    frontier = result.pareto
    print(
        f"explored {result.explored:,} configurations in {result.seconds:.1f}s; "
        f"predicted frontier has {len(frontier)} designs\n"
    )

    print(f"{'#':>3s} {'pred latency':>13s} {'pred DSP':>9s} "
          f"{'true latency':>13s} {'true DSP':>9s} {'valid':>6s}")
    verified = []
    for i, candidate in enumerate(frontier):
        hls = ctx.tool.synthesize(spec, candidate.point)
        verified.append((hls.latency, hls.utilization["DSP"], hls.valid))
        print(
            f"{i:3d} {candidate.predicted_latency:13,.0f} "
            f"{candidate.prediction.objectives['DSP']:9.3f} "
            f"{hls.latency:13,} {hls.utilization['DSP']:9.3f} {str(hls.valid):>6s}"
        )

    usable = [(lat, dsp) for lat, dsp, ok in verified if ok]
    if len(usable) >= 3:
        points = np.array(
            [[np.log2(max(lat, 1)), dsp] for lat, dsp in usable]
        )
        print("\ntrue latency (log2, x) vs DSP utilization (y):")
        print(ascii_scatter(points, width=56, height=14))

    if frontier:
        print("\nfastest predicted design:")
        print(render_point(spec, frontier[0].point))


if __name__ == "__main__":
    main()
