#!/usr/bin/env python3
"""Train the GNN surrogate (model M7) on a freshly-generated database.

A scaled-down version of the paper's training flow (Sections 4.1–4.3):
generate a design database with the three explorers, train the validity
classifier + regression models, and sanity-check predictions against
the (simulated) HLS tool on designs the model never saw.

Takes a few minutes.  Run:  python examples/train_surrogate.py
"""

import random
import time

from repro.designspace import build_design_space
from repro.explorer import generate_database
from repro.hls import MerlinHLSTool
from repro.kernels import get_kernel
from repro.model import TrainConfig, train_predictor

SCALE = 0.2  # fraction of the Table 1 database targets
EPOCHS = 12


def main() -> None:
    print(f"generating database (scale={SCALE}) ...")
    tool = MerlinHLSTool()
    database = generate_database(scale=SCALE, seed=0, tool=tool)
    stats = database.stats()
    print(f"  {stats['total']} designs, {stats['valid']} valid\n")

    print(f"training M7 predictor stack ({EPOCHS} epochs) ...")
    start = time.time()
    predictor, metrics = train_predictor(
        database,
        config_name="M7",
        train_config=TrainConfig(epochs=EPOCHS, seed=0),
        return_metrics=True,
    )
    print(f"  trained in {time.time() - start:.0f}s")
    print("  test metrics (RMSE on normalised targets; Table 2 format):")
    for key in ("latency", "DSP", "LUT", "FF", "BRAM", "all", "accuracy", "f1"):
        print(f"    {key:9s} {metrics[key]:.4f}")

    print("\nspot-check: model prediction vs simulated HLS on unseen points")
    spec = get_kernel("gemm-ncubed")
    space = build_design_space(spec)
    rng = random.Random(123)
    points = [p for p in space.sample(rng, 12) if not database.has(spec.name, p)][:5]
    predictions = predictor.predict_batch(spec.name, points)
    print(f"{'point':>3s} {'pred valid':>10s} {'pred latency':>13s} "
          f"{'true latency':>13s} {'true valid':>10s}")
    for i, (point, pred) in enumerate(zip(points, predictions)):
        truth = tool.synthesize(spec, point)
        print(
            f"{i:3d} {pred.valid_prob:10.2f} {pred.latency:13,.0f} "
            f"{truth.latency:13,} {str(truth.valid):>10s}"
        )


if __name__ == "__main__":
    main()
