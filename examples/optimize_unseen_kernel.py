#!/usr/bin/env python3
"""End-to-end GNN-DSE on an *unseen* kernel (the Table 3 scenario).

Uses the shared experiment context (cached database + trained M7
predictor — the first run trains it, later runs load it from
``.repro_cache/``), then optimises Polybench's ``gesummv``, which never
appears in the training database:

1. model-driven DSE sweeps the kernel's design space in seconds;
2. the top-10 predicted designs are synthesised with the HLS tool;
3. the result is compared against AutoDSE running the HLS tool in the
   loop for (simulated) hours.

Run:  python examples/optimize_unseen_kernel.py
"""

from repro.designspace import build_design_space
from repro.dse import ModelDSE
from repro.experiments import default_context
from repro.explorer import BottleneckExplorer, Database, Evaluator
from repro.kernels import get_kernel

KERNEL = "gesummv"


def main() -> None:
    ctx = default_context()
    print("loading / training the M7 predictor (cached after first run) ...")
    predictor = ctx.predictor("M7")

    spec = get_kernel(KERNEL)
    space = build_design_space(spec)
    print(f"\nkernel: {spec.name} — {spec.description}")
    print(f"design space: {space.size():,} configurations "
          f"(unseen: not in the training database)\n")

    baseline = ctx.tool.baseline(spec)
    print(f"unoptimised: {baseline.latency:,} cycles")

    dse = ModelDSE(predictor, spec, space, top_m=10)
    result = dse.run(time_limit_seconds=300)
    print(
        f"model-driven DSE: explored {result.explored:,} configs in "
        f"{result.seconds:.1f}s ({result.predictions_per_second:.0f} inferences/s)"
    )

    best_latency = None
    max_synth = 0.0
    for rank, candidate in enumerate(result.top):
        hls = ctx.tool.synthesize(spec, candidate.point)
        max_synth = max(max_synth, hls.synth_seconds)
        marker = ""
        if hls.valid and hls.fits(0.8):
            if best_latency is None or hls.latency < best_latency:
                best_latency = hls.latency
                marker = "  <-- best so far"
        print(
            f"  top-{rank + 1:02d}: predicted {candidate.predicted_latency:>10,.0f} "
            f"true {hls.latency:>10,} valid={hls.valid}{marker}"
        )
    gnn_minutes = (result.seconds + max_synth) / 60.0
    print(f"\nGNN-DSE total: {gnn_minutes:.1f} min "
          f"(DSE + top-10 synthesised in parallel)")
    if best_latency:
        print(f"best design: {best_latency:,} cycles "
              f"({baseline.latency / best_latency:.0f}x vs unoptimised)")

    print("\nAutoDSE baseline (HLS in the loop) ...")
    evaluator = Evaluator(ctx.tool, Database(), parallelism=8)
    autodse = BottleneckExplorer(spec, space, evaluator).run(
        max_evals=163, max_hours=21.0
    )
    print(
        f"AutoDSE: {autodse.evaluations} designs in "
        f"{autodse.elapsed_hours:.1f} simulated hours, "
        f"best {autodse.best_latency:,} cycles"
    )
    if best_latency and autodse.best_latency:
        speedup = autodse.elapsed_hours * 60.0 / gnn_minutes
        quality = (autodse.best_latency - best_latency) / autodse.best_latency * 100
        print(
            f"\n=> GNN-DSE is {speedup:.0f}x faster with {quality:+.1f}% "
            f"latency difference (paper: 11-79x faster, -2%..+5% quality)"
        )


if __name__ == "__main__":
    main()
