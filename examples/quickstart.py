#!/usr/bin/env python3
"""Quickstart: the GNN-DSE pipeline on the paper's toy kernel (Code 1).

Walks every stage once, with no training involved:

1. parse a pragma-annotated C kernel;
2. lower it to the LLVM-like IR;
3. build the pragma-extended ProGraML-style graph (Fig. 1(b));
4. enumerate the pragma design space;
5. evaluate a few design points with the simulated Merlin+HLS tool.

Run:  python examples/quickstart.py
"""

from repro.designspace import build_design_space, point_key
from repro.graph import encode_kernel, kernel_graph
from repro.hls import MerlinHLSTool
from repro.ir import print_module
from repro.kernels import toy_kernel


def main() -> None:
    spec = toy_kernel()
    print("=== Kernel source (Code 1 of the paper) ===")
    print(spec.source)

    print("=== Lowered IR ===")
    print(print_module(spec.module))

    graph = kernel_graph(spec)
    print("\n=== Program graph (Section 4.2) ===")
    for key, value in graph.stats().items():
        print(f"  {key:18s} {value}")

    encoded = encode_kernel(spec)
    print(f"\ninitial node embeddings: {encoded.x_base.shape} "
          f"(the paper's 124-dim features)")
    print(f"pragma knobs -> node rows: {encoded.pragma_rows}")

    space = build_design_space(spec)
    print(f"\n=== Design space ===\n{space!r}")
    for knob in space.knobs:
        print(f"  {knob.name:12s} ({knob.kind.keyword:8s}) candidates: {knob.candidates}")

    tool = MerlinHLSTool()
    print("\n=== Simulated Merlin+HLS evaluations ===")
    for point in list(space.enumerate())[:8]:
        result = tool.synthesize(spec, point)
        status = "ok" if result.valid else f"INVALID ({result.invalid_reason})"
        print(
            f"  {point_key(point):40s} latency={result.latency:>7,} "
            f"DSP={result.utilization['DSP']:.3f} "
            f"synth={result.synth_seconds / 60:.1f}min  {status}"
        )


if __name__ == "__main__":
    main()
