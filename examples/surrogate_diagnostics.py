#!/usr/bin/env python3
"""Diagnostics for a trained surrogate: calibration, coverage, and
search-baseline comparison.

Goes beyond the paper's evaluation with the tooling a practitioner
would want before trusting the model-driven DSE:

1. classifier probability calibration (expected calibration error);
2. per-kernel latency rank correlation (what top-M selection relies on);
3. database coverage per pragma knob;
4. ModelDSE vs simulated annealing (model-guided) on the same kernel —
   and the rendered C source of the winning design.

Takes a few minutes (trains a small model).
Run:  python examples/surrogate_diagnostics.py
"""

from repro.designspace import build_design_space, render_point, render_source
from repro.dse import ModelDSE, SimulatedAnnealingDSE
from repro.explorer import generate_database, measure_coverage
from repro.hls import MerlinHLSTool
from repro.kernels import get_kernel
from repro.model import (
    GraphDatasetBuilder,
    TrainConfig,
    calibrate_classifier,
    profile_regression,
    train_predictor,
)

KERNEL = "atax"


def main() -> None:
    tool = MerlinHLSTool()
    print("generating a small database (atax, stencil, spmv-ellpack) ...")
    database = generate_database(
        kernels=["atax", "stencil", "spmv-ellpack"], scale=0.25, seed=0, tool=tool
    )
    print(f"  {database.stats()}\n")

    print("training an M7 surrogate (12 epochs) ...")
    predictor = train_predictor(
        database, "M7", train_config=TrainConfig(epochs=12, seed=0)
    )
    builder = GraphDatasetBuilder(database, normalizer=predictor.normalizer)
    samples = builder.build()

    print("\n--- classifier calibration ---")
    print(calibrate_classifier(predictor.classifier, samples).pretty())

    print("\n--- regression profile (valid designs) ---")
    valid = [s for s in samples if s.label == 1]
    print(profile_regression(predictor.regressor, valid).pretty())

    spec = get_kernel(KERNEL)
    space = build_design_space(spec)
    print("\n--- database coverage ---")
    print(measure_coverage(database, space).pretty())

    print("\n--- search comparison on", KERNEL, "---")
    dse = ModelDSE(predictor, spec, space, top_m=5)
    beam = dse.run(time_limit_seconds=60)

    def model_scorer(point):
        prediction = predictor.predict(spec.name, point)
        usable = prediction.valid and prediction.fits(0.8)
        return usable, prediction.latency

    sa = SimulatedAnnealingDSE(space, model_scorer, seed=0)
    annealed = sa.run(max_evals=400)

    def truth(point):
        result = tool.synthesize(spec, point)
        return result.latency if result.valid and result.fits(0.8) else None

    beam_best = min(
        (t for t in (truth(c.point) for c in beam.top) if t is not None),
        default=None,
    )
    sa_best = truth(annealed.best_point) if annealed.best_point else None
    print(f"ordered-beam ModelDSE: explored {beam.explored:,}, "
          f"best true latency {beam_best}")
    print(f"simulated annealing  : explored {annealed.evaluations:,}, "
          f"best true latency {sa_best}")

    winner = beam.top[0].point if beam.top else annealed.best_point
    if winner:
        print("\n--- winning design ---")
        print(render_point(spec, winner))
        print("\n--- rendered source ---")
        print(render_source(spec, winner))


if __name__ == "__main__":
    main()
