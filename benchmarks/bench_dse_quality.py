"""Search-quality gate: Pareto hypervolume per query budget, race vs SA.

For each kernel two searchers spend the **same** surrogate-query budget
(distinct design points; memo revisits are free):

- ``sa``:   the simulated-annealing baseline, running alone under the
  whole budget through the shared :class:`BudgetedEvaluator`;
- ``race``: the UCB strategy racer (sa + greedy + rl + random arms,
  one shared frontier, bandit budget reallocation).

Quality is the **normalised hypervolume** of the resulting Pareto
front over the five minimised objectives (latency, DSP, BRAM, LUT,
FF), measured under reference bounds computed from the *union* of both
fronts — the standard scale-free way to compare two searches.  The
headline metric is hypervolume per 1k queries, so runs at different
budgets stay comparable.

Acceptance bar (``--smoke``, wired into ``make ci``): on fir,
spmv-ellpack, and gesummv the race hypervolume is >= the SA baseline
at the same budget, and a full second run reproduces every number and
every budget-ledger row bit-for-bit under the fixed seed.

Run standalone (no training, untrained weights)::

    python benchmarks/bench_dse_quality.py --smoke   # 3 kernels, ~1 min
    python benchmarks/bench_dse_quality.py           # all 16 kernels
"""

import argparse
import json
import os
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # standalone run from a source checkout, no install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from bench_parallel_dse import _untrained_predictor

from repro.designspace import build_design_space
from repro.dse import (
    PARETO_KEYS,
    normalized_hypervolume,
    reference_point,
    run_race,
)
from repro.dse.pipeline import EvaluationPipeline
from repro.kernels import get_kernel, list_kernels

SMOKE_KERNELS = ("fir", "spmv-ellpack", "gesummv")
SEED = 2022  # the paper's year; fixed so every CI run is bit-identical


def _budget(space_size: int, smoke: bool) -> int:
    """Query budget scaled to the space: enough to search, not to sweep.

    Half the space, clamped — tiny spaces (fir: 97 points) stay a real
    search problem rather than an exhaustive enumeration, and huge
    spaces (atax: 5k+) stay affordable on a CI runner.
    """
    cap = 96 if smoke else 256
    return max(32, min(space_size // 2, cap))


def _front_objectives(result):
    return [c.prediction.objectives for c in result.pareto]


def bench_kernel(predictor, name: str, smoke: bool) -> dict:
    spec = get_kernel(name)
    space = build_design_space(spec)
    budget = _budget(space.size(), smoke)

    runs = {}
    for label, arms in (("sa", ("sa",)), ("race", None)):
        start = time.perf_counter()
        kwargs = {} if arms is None else {"strategies": arms}
        result = run_race(
            EvaluationPipeline(predictor), spec, space,
            budget=budget, seed=SEED, **kwargs,
        )
        runs[label] = {
            "result": result,
            "seconds": time.perf_counter() - start,
        }

    fronts = {label: _front_objectives(run["result"]) for label, run in runs.items()}
    bounds = reference_point(list(fronts.values()), PARETO_KEYS)
    row = {"kernel": name, "space": space.size(), "budget": budget}
    for label, run in runs.items():
        result = run["result"]
        hv = normalized_hypervolume(fronts[label], bounds, PARETO_KEYS)
        row[label] = {
            "hypervolume": hv,
            "hv_per_1k_queries": hv / (result.queries / 1000.0),
            "queries": result.queries,
            "pareto_points": len(result.pareto),
            "seconds": round(run["seconds"], 2),
        }
    row["race"]["ledger"] = runs["race"]["result"].ledger()
    row["race"]["arms"] = runs["race"]["result"].summary()["strategies"]
    return row


def _reproducibility_signature(row: dict) -> tuple:
    """Everything that must be bit-identical across reruns."""
    return (
        row["kernel"],
        row["budget"],
        row["sa"]["hypervolume"],
        row["race"]["hypervolume"],
        row["sa"]["pareto_points"],
        row["race"]["pareto_points"],
        tuple(tuple(sorted(r.items())) for r in row["race"]["ledger"]),
    )


def markdown_table(rows) -> str:
    lines = [
        "| kernel | space | budget | SA hv | race hv | SA hv/1kq | race hv/1kq | race arms (queries) |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        arms = ", ".join(
            f"{name}:{totals['queries']}"
            for name, totals in row["race"]["arms"].items()
        )
        lines.append(
            "| {kernel} | {space} | {budget} | {sa:.4f} | {race:.4f} "
            "| {sa1k:.3f} | {race1k:.3f} | {arms} |".format(
                kernel=row["kernel"],
                space=row["space"],
                budget=row["budget"],
                sa=row["sa"]["hypervolume"],
                race=row["race"]["hypervolume"],
                sa1k=row["sa"]["hv_per_1k_queries"],
                race1k=row["race"]["hv_per_1k_queries"],
                arms=arms,
            )
        )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="3 small kernels + the race>=SA and bit-reproducibility "
             "assertions (the CI gate)",
    )
    parser.add_argument(
        "--kernels", nargs="*", default=None,
        help="restrict to these kernels (default: smoke trio or all 16)",
    )
    parser.add_argument("--output", metavar="FILE", help="write results JSON")
    parser.add_argument(
        "--markdown", metavar="FILE",
        help="write the comparison as a markdown table (step summaries)",
    )
    args = parser.parse_args()

    kernels = args.kernels or (list(SMOKE_KERNELS) if args.smoke else list_kernels())
    predictor = _untrained_predictor(SEED)

    rows = []
    failures = []
    for name in kernels:
        row = bench_kernel(predictor, name, args.smoke)
        rows.append(row)
        sa_hv, race_hv = row["sa"]["hypervolume"], row["race"]["hypervolume"]
        verdict = "ok" if race_hv >= sa_hv else "REGRESSION"
        print(
            f"{name:14s} space {row['space']:>6,}  budget {row['budget']:>4}  "
            f"sa {sa_hv:.4f}  race {race_hv:.4f}  [{verdict}]"
        )
        if args.smoke and race_hv < sa_hv:
            failures.append(
                f"{name}: race hypervolume {race_hv:.6f} < SA baseline {sa_hv:.6f}"
            )

    if args.smoke:
        # Bit-reproducibility: the full comparison must replay identically.
        print("re-running for bit-reproducibility...")
        for row in rows:
            replay = bench_kernel(predictor, row["kernel"], args.smoke)
            if _reproducibility_signature(replay) != _reproducibility_signature(row):
                failures.append(f"{row['kernel']}: rerun did not reproduce bit-for-bit")
            else:
                print(f"{row['kernel']:14s} reproduced bit-for-bit")

    table = markdown_table(rows)
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write("### DSE search quality (hypervolume per budget)\n\n")
            handle.write(table + "\n")
        print(f"wrote {args.markdown}")
    if args.output:
        payload = {
            "seed": SEED,
            "smoke": args.smoke,
            "rows": rows,
            "failures": failures,
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        print(f"wrote {args.output}")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nall checks passed" if args.smoke else "\ndone")
    return 0


if __name__ == "__main__":
    sys.exit(main())
