"""Section 5.3: predictor inference throughput.

The paper runs 22 inferences/second (PyTorch on their machine); the
claim that matters for the DSE is that model evaluation is orders of
magnitude faster than HLS synthesis (minutes to hours per design).
"""

from repro.experiments import run_inference_speed


def test_inference_throughput(benchmark, ctx, predictor):
    result = benchmark.pedantic(
        lambda: run_inference_speed(ctx, num_points=256),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"\n{result.inferences_per_second:.1f} inferences/s "
        f"({result.milliseconds_per_inference:.2f} ms each) on {result.kernel} "
        f"(paper: 22 inferences/s)"
    )
    # Must beat the paper's 22/s and be ~5 orders faster than synthesis
    # (a cheap modeled synthesis run is ~200 s).
    assert result.inferences_per_second > 22.0
