"""Scaling of the sharded parallel DSE orchestrator.

For each kernel the full space is swept three ways:

- ``serial``:   plain :class:`ModelDSE` — the bit-identity reference;
- ``1 worker``: :class:`ParallelDSE` in-process (sharded + journalled
  code path, no subprocesses);
- ``4 workers``: the fork-based orchestrator.

Both parallel runs carry the same **simulated fixed per-batch dispatch
cost** (a deterministic sleep injected through
:class:`~repro.dse.parallel.WorkerHooks`), modelling the per-dispatch
latency (RPC hop / accelerator launch / HLS invocation) that parallel
workers overlap.  Pinning the dispatch cost makes the scaling numbers
hardware-independent — on a single-core CI runner the sleeps still
overlap across worker processes even though the compute cannot — the
same device the serving load test uses for its throughput bar.

The acceptance bar: on every benchmarked kernel the 4-worker run is
bit-identical to the serial explorer (top-K order *and* Pareto front)
and at least 2.5x faster than the identically-configured 1-worker run
(1.5x in ``--smoke`` mode, which uses a smaller dispatch cost).

Run standalone (no training, untrained weights)::

    python benchmarks/bench_parallel_dse.py --smoke   # ~30 s
    python benchmarks/bench_parallel_dse.py           # a few minutes
"""

import argparse
import math
import os
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # standalone run from a source checkout, no install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.designspace import build_design_space, point_key
from repro.dse import ModelDSE, ParallelDSE, WorkerHooks
from repro.explorer.database import Database
from repro.graph.encoding import EDGE_DIM, NODE_DIM
from repro.kernels import get_kernel
from repro.model.config import BRAM_OBJECTIVE, MODEL_CONFIGS, REGRESSION_OBJECTIVES
from repro.model.dataset import GraphDatasetBuilder
from repro.model.models import build_model
from repro.model.predictor import GNNDSEPredictor

WORKERS = 4
NUM_SHARDS = 16  # 4 shards per worker: whole rounds, no straggler tail
SPAWN_SLACK_SECONDS = 0.6  # fork + per-worker pipeline build, measured upper bound
# Worst-case factor on the compute portion of the multi-worker run: on a
# single-core runner the W CPU-bound workers time-slice one core, so their
# aggregate compute can cost up to ~W times the serial sweep in wall clock.
CONTENTION_FACTOR = float(WORKERS)


def _untrained_predictor(seed: int = 0) -> GNNDSEPredictor:
    builder = GraphDatasetBuilder(Database())
    config = MODEL_CONFIGS["M7"]
    classifier = build_model(
        config.for_task("classification"), NODE_DIM, EDGE_DIM, seed=seed
    )
    regressor = build_model(
        config.for_task("regression", REGRESSION_OBJECTIVES),
        NODE_DIM, EDGE_DIM, seed=seed + 1,
    )
    bram = build_model(
        config.for_task("regression", BRAM_OBJECTIVE), NODE_DIM, EDGE_DIM, seed=seed + 2
    )
    return GNNDSEPredictor(classifier, regressor, bram, builder.normalizer, builder)


def _signature(result):
    """Comparable bit-exact view of a DSE result (top order + front)."""
    return (
        [(point_key(c.point), c.prediction) for c in result.top],
        [(point_key(c.point), c.prediction) for c in result.pareto],
    )


def _dispatch_cost(compute_seconds: float, target: float) -> float:
    """Per-batch dispatch cost that keeps ``target`` speedup reachable.

    With S shards on W workers, the 1-worker run costs ``S*c + C`` and
    the W-worker run at worst ``(S/W)*c + A*C + spawn``, where A is the
    single-core contention factor (compute does not scale on one core —
    only the dispatch sleeps overlap).  Solving for the cost ``c`` that
    yields ``target`` under that pessimistic model, plus 20% margin,
    keeps the bar honest (the sleeps must genuinely overlap) without
    being flaky on slow single-core runners; on real multi-core boxes
    the measured speedup simply lands higher.
    """
    shards_ratio = NUM_SHARDS * (1.0 - target / WORKERS)
    needed = (
        (target * CONTENTION_FACTOR - 1.0) * compute_seconds
        + target * SPAWN_SLACK_SECONDS
    ) / shards_ratio
    return max(0.15, 1.2 * needed)


def bench_kernel(predictor, name: str, target_speedup: float) -> dict:
    spec = get_kernel(name)
    space = build_design_space(spec)

    start = time.perf_counter()
    serial = ModelDSE(predictor, spec, space, top_m=10).run()
    compute = time.perf_counter() - start
    reference = _signature(serial)

    shard_size = max(1, math.ceil(serial.explored / NUM_SHARDS))
    cost = _dispatch_cost(compute, target_speedup)
    times = {}
    for workers in (1, WORKERS):
        dse = ParallelDSE(
            predictor, spec, space,
            workers=workers,
            top_m=10,
            shard_size=shard_size,
            pipeline_batch_size=shard_size,  # one dispatch per shard
            hooks=WorkerHooks(batch_overhead_seconds=cost),
        )
        start = time.perf_counter()
        result = dse.run()
        times[workers] = time.perf_counter() - start
        if _signature(result) != reference:
            raise SystemExit(
                f"FAIL {name}: {workers}-worker result is not bit-identical "
                "to the serial explorer"
            )
        if result.explored != serial.explored:
            raise SystemExit(
                f"FAIL {name}: explored {result.explored} != {serial.explored}"
            )
    speedup = times[1] / times[WORKERS]
    print(
        f"{name:14s} {serial.explored:5d} pts  dispatch {cost:5.2f}s/batch  "
        f"1w {times[1]:6.2f}s  {WORKERS}w {times[WORKERS]:6.2f}s  "
        f"speedup {speedup:4.2f}x  (bit-identical)"
    )
    return {"kernel": name, "speedup": speedup, "times": times, "cost": cost}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small dispatch cost + relaxed 1.5x bar (~30 s total)",
    )
    args = parser.parse_args(argv)
    kernels = ("fir", "spmv-ellpack") if args.smoke else ("fir", "spmv-ellpack", "gesummv")
    target = 1.5 if args.smoke else 2.5

    predictor = _untrained_predictor()
    print(
        f"parallel DSE scaling — {WORKERS} workers, {NUM_SHARDS} shards, "
        f"target >= {target:.1f}x (untrained weights)"
    )
    failures = []
    for name in kernels:
        outcome = bench_kernel(predictor, name, target)
        if outcome["speedup"] < target:
            failures.append(outcome)
    if failures:
        for outcome in failures:
            print(
                f"FAIL {outcome['kernel']}: speedup {outcome['speedup']:.2f}x "
                f"< {target:.1f}x"
            )
        return 1
    print(f"PASS: all kernels >= {target:.1f}x and bit-identical to serial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
