"""Ablations beyond the paper (DESIGN.md §5).

1. **Edge features** — TransformerConv with vs without the W3·e_ij
   term of Eq. 8.  The paper motivates TransformerConv precisely by its
   edge-feature support (flow/position attributes carry information).
2. **JKN mode** — max-pooling over layers (Eq. 9) vs last-layer-only.

Both train the main regression model for a short budget on identical
splits and compare test RMSE totals.
"""

import os
from dataclasses import replace

import pytest

from repro.graph.encoding import EDGE_DIM, NODE_DIM
from repro.model import (
    MODEL_CONFIGS,
    REGRESSION_OBJECTIVES,
    GraphDatasetBuilder,
    TrainConfig,
    Trainer,
    build_model,
    evaluate_regression,
    train_test_split,
)

_EPOCHS = int(os.environ.get("REPRO_ABLATION_EPOCHS", "8"))


@pytest.fixture(scope="module")
def splits(ctx):
    builder = GraphDatasetBuilder(ctx.database())
    samples = builder.build(valid_only=True)
    train, test = train_test_split(samples, 0.2, seed=ctx.seed)
    return train, test


def _train_and_score(config, train, test, seed):
    model = build_model(config, NODE_DIM, EDGE_DIM, seed=seed)
    Trainer(TrainConfig(epochs=_EPOCHS, seed=seed)).fit(model, train)
    metrics = evaluate_regression(model, test)
    return sum(metrics.values()), metrics


def test_ablation_edge_features(benchmark, ctx, splits):
    train, test = splits
    base = MODEL_CONFIGS["M6"].for_task("regression", REGRESSION_OBJECTIVES)

    def run():
        with_edges, m1 = _train_and_score(base, train, test, ctx.seed)
        without, m2 = _train_and_score(
            replace(base, use_edge_attr=False), train, test, ctx.seed
        )
        return with_edges, without, m1, m2

    with_edges, without, m1, m2 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nedge-feature ablation (RMSE total, lower=better): "
          f"with={with_edges:.4f} without={without:.4f}")
    print(f"  with:    { {k: round(v, 4) for k, v in m1.items()} }")
    print(f"  without: { {k: round(v, 4) for k, v in m2.items()} }")
    # This is a *reporting* benchmark: at the short default budget the
    # comparison is noisy (the variant with more parameters converges
    # slower), so only sanity is asserted; raise REPRO_ABLATION_EPOCHS
    # to ~20+ for a converged comparison.
    import numpy as np

    assert np.isfinite(with_edges) and np.isfinite(without)
    assert 0 < with_edges < 50 and 0 < without < 50


def test_ablation_jkn_mode(benchmark, ctx, splits):
    train, test = splits
    base = MODEL_CONFIGS["M6"].for_task("regression", REGRESSION_OBJECTIVES)

    def run():
        jkn_max, m1 = _train_and_score(base, train, test, ctx.seed)
        last_only, m2 = _train_and_score(
            replace(base, use_jkn=False), train, test, ctx.seed
        )
        return jkn_max, last_only, m1, m2

    jkn_max, last_only, m1, m2 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nJKN ablation (RMSE total): max-JKN={jkn_max:.4f} last-layer={last_only:.4f}")
    # Reporting benchmark (see the edge-feature ablation note above).
    import numpy as np

    assert np.isfinite(jkn_max) and np.isfinite(last_only)
    assert 0 < jkn_max < 50 and 0 < last_only < 50
