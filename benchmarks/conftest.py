"""Shared fixtures for the benchmark suite.

The heavyweight artifacts (database, trained predictor) are cached on
disk by :class:`repro.experiments.ExperimentContext`, so repeated
benchmark runs only pay for them once.  Tune with REPRO_SCALE /
REPRO_EPOCHS (see ``repro/experiments/context.py``).
"""

import pytest

from repro.experiments import ExperimentContext, default_context


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return default_context()


@pytest.fixture(scope="session")
def predictor(ctx):
    """The cached M7 predictor stack (trained on first use)."""
    return ctx.predictor("M7")
