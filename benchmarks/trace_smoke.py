"""Smoke gate for the observability layer: ``make trace-smoke``.

Runs a tiny traced DSE through the real CLI (``repro dse --trace``) on
untrained weights, then checks the exported artifact end-to-end:

- the trace file on disk passes :func:`repro.obs.validate_trace`;
- span parentage is a well-formed forest and every child span lies
  inside its parent's interval (durations sum consistently with the
  reported wall time);
- the expected span names are present (CLI root, shard evaluation,
  pipeline batches);
- the process metrics registry picked up the pipeline/DSE counters the
  ``/metrics`` endpoint serves, and the Prometheus-style text dump
  renders them.

Exits non-zero on any violation.  Finishes in seconds; no database or
training required.
"""

import json
import os
import shutil
import sys
import tempfile
import time

try:
    import repro  # noqa: F401
except ImportError:  # standalone run from a source checkout, no install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from bench_pipeline import _untrained_predictor

from repro.cli import main as repro_main
from repro.obs import REGISTRY, metrics_text, validate_trace

KERNEL = "fir"

#: Span-interval containment slack (float accumulation, not clock skew).
EPSILON_S = 1e-6


def check_span_tree(payload):
    """Every child must reference a known parent and nest inside it."""
    spans = {s["id"]: s for s in payload["spans"]}
    roots = 0
    for s in spans.values():
        if s["parent_id"] is None:
            roots += 1
            continue
        parent = spans[s["parent_id"]]
        child_start = s["start_s"]
        child_end = child_start + s["duration_s"]
        parent_start = parent["start_s"]
        parent_end = parent_start + parent["duration_s"]
        assert parent_start - EPSILON_S <= child_start, (
            f"span {s['name']} starts before its parent {parent['name']}"
        )
        assert child_end <= parent_end + EPSILON_S, (
            f"span {s['name']} ({child_end - child_start:.6f}s) overruns "
            f"its parent {parent['name']}"
        )
    assert roots >= 1, "trace has no root span"
    return roots


def main():
    with tempfile.TemporaryDirectory() as tmp:
        artifact = os.path.join(tmp, "model")
        _untrained_predictor().save(artifact)
        trace_path = os.path.join(tmp, "trace.json")

        wall_start = time.monotonic()
        code = repro_main([
            "dse", "-k", KERNEL, "--model", artifact,
            "--top", "3", "--time-limit", "120",
            "--workers", "1", "--checkpoint", os.path.join(tmp, "ckpt.json"),
            "--trace", trace_path,
        ])
        wall = time.monotonic() - wall_start
        assert code == 0, f"repro dse exited {code}"
        assert os.path.exists(trace_path), "--trace wrote no file"

        with open(trace_path) as handle:
            payload = json.load(handle)
        validate_trace(payload)
        assert payload["dropped_spans"] == 0

        names = {s["name"] for s in payload["spans"]}
        for required in (
            "dse.run", "dse.parallel.run", "dse.shard",
            "dse.pareto_merge", "pipeline.predict_batch", "pipeline.forward",
        ):
            assert required in names, f"missing span {required!r}; got {sorted(names)}"
        check_span_tree(payload)

        # The CLI root span covers the whole search and fits the
        # measured wall time of the command.
        (root,) = [s for s in payload["spans"] if s["name"] == "dse.run"]
        assert root["parent_id"] is None
        assert 0.0 < root["duration_s"] <= wall + EPSILON_S, (
            f"root span {root['duration_s']:.3f}s vs wall {wall:.3f}s"
        )
        shard_spans = [s for s in payload["spans"] if s["name"] == "dse.shard"]
        shard_sum = sum(s["duration_s"] for s in shard_spans)
        assert shard_sum <= root["duration_s"] + EPSILON_S

        counters = REGISTRY.counters()
        assert counters.get("pipeline.points", 0) > 0
        assert counters.get("dse.shards_completed", 0) == len(shard_spans)
        assert counters.get("pipeline.cache_misses", 0) > 0
        fill = REGISTRY.histogram("pipeline.batch_fill").snapshot()
        assert fill["count"] > 0

        text = metrics_text()
        assert "repro_pipeline_points" in text
        assert "repro_dse_shards_completed" in text

        # CI artifact hook: keep the validated trace around for upload.
        export = os.environ.get("TRACE_SMOKE_EXPORT")
        if export:
            shutil.copyfile(trace_path, export)
            print(f"trace-smoke: exported trace to {export}")

        print(
            f"trace-smoke OK: {payload['span_count']} spans "
            f"({len(shard_spans)} shards, {shard_sum:.2f}s evaluated / "
            f"{root['duration_s']:.2f}s traced / {wall:.2f}s wall), "
            f"{len(counters)} counters live"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
