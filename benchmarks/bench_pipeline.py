"""Throughput of the batched, cached DSE evaluation pipeline.

Four modes per kernel, all returning bit-identical predictions:

- ``baseline``: ``GNNDSEPredictor.predict``, one point per call — the
  pre-pipeline hot path;
- ``batched``:  compiled engine, cache off, regression on every point —
  the raw batching win;
- ``cascade``:  compiled engine, classifier-first — regression only for
  predicted-valid points;
- ``pipeline``: compiled + cascade + cache on a DSE-shaped workload
  that revisits points, the way annealer chains and beam sweeps do.

``--engine`` swaps the batched engine: ``compiled`` (bit-identical
reference lowering), ``fused`` (lazy tensor engine — tolerance-level
equivalence, verified in-row), or ``both`` to print eager-vs-fused
rows side by side.  Every row's ``baseline_pps`` is the *eager*
per-point path, so a fused row's ``pipeline_speedup`` is exactly the
ISSUE acceptance ratio: fused pipeline points/sec over the eager
baseline (bar: >=3x).  The compiled acceptance bar stays >=5x.

Run standalone for a quick look (no training, untrained weights)::

    python benchmarks/bench_pipeline.py --smoke --engine both

or through pytest-benchmark with the cached trained predictor::

    pytest benchmarks/bench_pipeline.py --benchmark-only
"""

import argparse
import os
import random
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # standalone run from a source checkout, no install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.designspace import build_design_space
from repro.dse import EvaluationPipeline
from repro.kernels import get_kernel

KERNELS = ("spmv-ellpack", "gemm-ncubed")


def _dse_workload(space, unique, total, seed):
    """A search-shaped stream: ``total`` draws over a ``unique``-point pool."""
    rng = random.Random(seed)
    pool = space.sample(rng, unique)
    return pool, [rng.choice(pool) for _ in range(total)]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_kernel(
    predictor, kernel, unique=48, total=256, batch_size=32, seed=0, engine="compiled"
):
    """Measure all four modes on one kernel; returns a result row."""
    space = build_design_space(get_kernel(kernel))
    pool, workload = _dse_workload(space, unique, total, seed)

    def make_pipeline(cache):
        return EvaluationPipeline(
            predictor, batch_size=batch_size, cache=cache, engine=engine
        )

    def warm(pipeline):
        # One-time costs stay out of the timed region: kernel
        # lowering+encoding, engine compilation, first-touch of the
        # workspace buffers.  The point cache is cleared afterwards so
        # the timed run still evaluates every point.
        pipeline.predict_batch(kernel, pool[:2], objectives_for="all")
        pipeline.predict_batch(kernel, pool[:2], objectives_for="valid")
        pipeline.clear_cache()
        return pipeline

    predictor.predict(kernel, pool[0])
    expected, base_s = _timed(
        lambda: [predictor.predict(kernel, p) for p in workload]
    )

    batched = warm(make_pipeline(cache=False))
    full, batched_s = _timed(
        lambda: batched.predict_batch(kernel, pool, objectives_for="all")
    )

    casc = warm(make_pipeline(cache=False))
    casc_out, cascade_s = _timed(
        lambda: casc.predict_batch(kernel, pool, objectives_for="valid")
    )

    pipe = warm(make_pipeline(cache=True))
    pipe.reset_stats()

    def run_pipeline():
        out = []
        # DSE-sized request slices, the granularity a search issues.
        for i in range(0, len(workload), 64):
            out.extend(
                pipe.predict_batch(kernel, workload[i : i + 64], objectives_for="valid")
            )
        return out

    piped, pipeline_s = _timed(run_pipeline)

    # Equivalence spot-check: throughput numbers only count if the
    # pipeline returns what the baseline did — bit-identical for the
    # compiled engine, tolerance-equivalent (repro.nn.lazy.equiv, with
    # the engine's own first-batch verification gate also armed) for
    # the fused engine.
    if engine == "fused":
        from repro.nn.lazy import predictions_equivalent
        from repro.nn.tensor import get_default_dtype

        problem = predictions_equivalent(
            piped, expected, dtype=get_default_dtype()
        )
        assert problem is None, f"{kernel} fused-vs-eager: {problem}"
    else:
        for got, want in zip(piped, expected):
            assert got.valid == want.valid and got.valid_prob == want.valid_prob
            assert got.objectives is None or got == want
    valid_count = sum(1 for p in casc_out if p.valid)

    base_rate = len(workload) / base_s
    row = {
        "kernel": kernel,
        "engine": engine,
        "workload": len(workload),
        "unique": len(pool),
        "valid_fraction": valid_count / len(pool),
        "baseline_pps": base_rate,
        "batched_pps": len(pool) / batched_s,
        "cascade_pps": len(pool) / cascade_s,
        "pipeline_pps": len(workload) / pipeline_s,
        "cache_hit_rate": pipe.stats.cache_hit_rate(),
        "stats": pipe.stats.summary(),
    }
    for mode in ("batched", "cascade", "pipeline"):
        row[f"{mode}_speedup"] = row[f"{mode}_pps"] / base_rate
    return row


def format_rows(rows):
    lines = [
        f"{'kernel':14s} {'engine':>8s} {'base pts/s':>10s} {'batched':>9s} "
        f"{'cascade':>9s} {'pipeline':>9s} {'speedup':>8s} {'hit rate':>8s} "
        f"{'valid':>6s}"
    ]
    for row in rows:
        lines.append(
            f"{row['kernel']:14s} {row.get('engine', 'compiled'):>8s} "
            f"{row['baseline_pps']:10.1f} "
            f"{row['batched_pps']:9.1f} {row['cascade_pps']:9.1f} "
            f"{row['pipeline_pps']:9.1f} {row['pipeline_speedup']:7.1f}x "
            f"{row['cache_hit_rate']:8.2f} {row['valid_fraction']:6.2f}"
        )
    return "\n".join(lines)


def test_pipeline_throughput(benchmark, predictor):
    rows = benchmark.pedantic(
        lambda: [
            measure_kernel(predictor, kernel, batch_size=24) for kernel in KERNELS
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows))
    for row in rows:
        benchmark.extra_info[row["kernel"]] = {
            key: value for key, value in row.items() if key != "stats"
        }
        assert row["pipeline_speedup"] >= 5.0, (
            f"{row['kernel']}: end-to-end pipeline only "
            f"{row['pipeline_speedup']:.1f}x over per-point baseline"
        )


def test_fused_pipeline_throughput(benchmark, predictor):
    """ISSUE acceptance: fused pipeline >=3x the eager per-point baseline."""
    rows = benchmark.pedantic(
        lambda: [
            measure_kernel(predictor, kernel, batch_size=24, engine="fused")
            for kernel in KERNELS
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows))
    for row in rows:
        benchmark.extra_info[row["kernel"]] = {
            key: value for key, value in row.items() if key != "stats"
        }
        assert row["pipeline_speedup"] >= 3.0, (
            f"{row['kernel']}: fused pipeline only "
            f"{row['pipeline_speedup']:.1f}x over the eager baseline"
        )


def _untrained_predictor(seed=0):
    """Deterministic untrained stack for --smoke runs (no database)."""
    from repro.explorer.database import Database
    from repro.graph.encoding import EDGE_DIM, NODE_DIM
    from repro.model.config import (
        BRAM_OBJECTIVE,
        MODEL_CONFIGS,
        REGRESSION_OBJECTIVES,
    )
    from repro.model.dataset import GraphDatasetBuilder
    from repro.model.models import build_model
    from repro.model.predictor import GNNDSEPredictor

    builder = GraphDatasetBuilder(Database())
    config = MODEL_CONFIGS["M7"]
    classifier = build_model(
        config.for_task("classification"), NODE_DIM, EDGE_DIM, seed=seed
    )
    regressor = build_model(
        config.for_task("regression", REGRESSION_OBJECTIVES),
        NODE_DIM, EDGE_DIM, seed=seed + 1,
    )
    bram = build_model(
        config.for_task("regression", BRAM_OBJECTIVE), NODE_DIM, EDGE_DIM, seed=seed + 2
    )
    return GNNDSEPredictor(classifier, regressor, bram, builder.normalizer, builder)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload with untrained weights; finishes in seconds",
    )
    parser.add_argument("--unique", type=int, default=None)
    parser.add_argument("--total", type=int, default=None)
    parser.add_argument(
        "--engine", choices=("compiled", "fused", "both"), default="compiled",
        help="batched engine to measure; 'both' prints side-by-side rows",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        predictor = _untrained_predictor()
        unique, total, batch_size = args.unique or 16, args.total or 120, 16
    else:
        from repro.experiments import default_context

        predictor = default_context().predictor("M7")
        unique, total, batch_size = args.unique or 48, args.total or 256, 24

    engines = ("compiled", "fused") if args.engine == "both" else (args.engine,)
    rows = [
        measure_kernel(
            predictor, kernel, unique=unique, total=total,
            batch_size=batch_size, engine=engine,
        )
        for kernel in KERNELS
        for engine in engines
    ]
    print(format_rows(rows))
    for row in rows:
        print(f"  {row['kernel']}: {row['stats']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
