"""Table 3: unseen-kernel DSE vs the AutoDSE baseline.

The predictor never saw bicg / doitgen / gesummv / 2mm.  GNN-DSE sweeps
their spaces with the model (exhaustively where feasible, ordered
heuristic for 2mm) and synthesises only the top-10; AutoDSE keeps the
HLS tool in the loop for up to 21 simulated hours.  The paper reports
11–79x runtime speedups (average 48x) at -2%..+5% of AutoDSE's design
quality; the reproduced shape is an order-of-magnitude speedup at
near-parity quality.
"""

from repro.experiments import format_table3, run_table3


def test_table3_unseen_kernels(benchmark, ctx, predictor):
    rows = benchmark.pedantic(
        lambda: run_table3(ctx, dse_time_limit=120.0),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table3(rows))
    by_kernel = {r.kernel: r for r in rows}
    assert set(by_kernel) == {"bicg", "doitgen", "gesummv", "2mm"}
    # Most unseen kernels yield usable designs by pure transfer (2mm's
    # half-billion-point space is the hard case at small budgets).
    solved = [r for r in rows if r.gnn_dse_latency is not None]
    assert len(solved) >= 2
    # GNN-DSE is faster than AutoDSE on average.  Our synthesis-runtime
    # model ties "aggressive design" to "long synthesis", compressing
    # the attainable gap versus the paper's 48x — see EXPERIMENTS.md.
    speedups = [r.runtime_speedup for r in rows]
    assert sum(speedups) / len(speedups) > 2.0
    # At least one unseen kernel reaches AutoDSE-parity design quality
    # (paper: -2%..+5% on all four).
    assert min(r.latency_ratio for r in solved) < 1.5
