"""Fig. 6: t-SNE of initial vs learned design embeddings (stencil).

The paper shows that initial embeddings mix designs of very different
latency while the GNN encoder's embeddings cluster designs by latency.
We quantify this with a neighborhood-coherence score (mean local
latency spread over global spread; lower = tighter clustering) and
check the learned embedding is markedly more coherent.
"""

from repro.experiments import format_fig6, run_fig6


def test_fig6_embedding_coherence(benchmark, ctx, predictor):
    result = benchmark.pedantic(
        lambda: run_fig6(ctx, kernel="stencil", predictor=predictor, max_designs=200),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig6(result))
    assert result.learned_embedding.shape[1] == 2
    # Learned embeddings cluster designs by latency (low coherence
    # score) and at least as tightly as the initial features — the
    # figure's visual claim, made measurable.  (Initial features are
    # not a strawman here: within one kernel they already differ only
    # in the pragma options, so a small margin is allowed.)
    assert result.learned_coherence < 0.85
    assert result.learned_coherence <= result.initial_coherence * 1.05
