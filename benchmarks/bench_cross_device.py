"""Cross-device DSE gate: distinct per-device fronts, reproducible merge.

Runs :func:`repro.dse.run_cross_device_dse` with the analytic evaluator
(no training, no trained weights — the modeled HLS/CGRA flow itself is
the oracle) over two FPGA parts with different capacities/AXI widths
(xcvu9p, xczu9eg) and the CGRA grid (cgra4x4), on three kernels.

Acceptance bar (``--smoke``, wired into ``make ci``):

- every device yields a non-empty Pareto front on every kernel, kept
  over that device's own objective axes (DSP/BRAM/LUT/FF vs PE/ISLOT);
- the fronts are genuinely device-dependent: for each kernel, no two
  devices report identical (latency, util_max) front projections;
- the merged cross-device front is non-empty, device-annotated, and a
  subset of the per-device fronts;
- a full second run reproduces the entire payload bit-for-bit.

Run standalone::

    python benchmarks/bench_cross_device.py --smoke
    python benchmarks/bench_cross_device.py --smoke --output cross.json
"""

import argparse
import json
import os
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # standalone run from a source checkout, no install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.designspace import build_design_space
from repro.dse import run_cross_device_dse
from repro.kernels import get_kernel

SMOKE_KERNELS = ("fir", "gesummv", "stencil")
DEVICES = ("xcvu9p", "xczu9eg", "cgra4x4")
TIME_LIMIT = 120.0


def run_kernel(name: str) -> dict:
    spec = get_kernel(name)
    space = build_design_space(spec)
    start = time.perf_counter()
    result = run_cross_device_dse(
        spec, space, DEVICES, time_limit_seconds=TIME_LIMIT
    )
    elapsed = time.perf_counter() - start
    payload = result.payload()
    payload["seconds"] = round(elapsed, 3)
    return payload


def check_kernel(payload: dict) -> list:
    """Assertions for one kernel's cross-device payload; returns errors."""
    errors = []
    kernel = payload["kernel"]
    fronts = payload["per_device"]
    if sorted(fronts) != sorted(DEVICES):
        errors.append(f"{kernel}: expected fronts for {DEVICES}, got {sorted(fronts)}")
        return errors
    for device, front in fronts.items():
        if not front["pareto"]:
            errors.append(f"{kernel} @ {device}: empty Pareto front")
    # Distinctness: the (latency, util_max) projection of each device's
    # front must differ between every device pair.
    projections = {}
    for device, front in fronts.items():
        entries = []
        for item in front["pareto"]:
            objectives = item["objectives"]
            utils = [v for k, v in objectives.items() if k != "latency"]
            entries.append((objectives["latency"], max(utils) if utils else 0.0))
        projections[device] = sorted(entries)
    names = sorted(projections)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if projections[a] == projections[b]:
                errors.append(f"{kernel}: devices {a} and {b} produced identical fronts")
    merged = payload["merged"]
    if not merged:
        errors.append(f"{kernel}: empty merged cross-device front")
    front_points = {
        (device, item["point"])
        for device, front in fronts.items()
        for item in front["pareto"]
    }
    for entry in merged:
        if entry["device"] not in fronts:
            errors.append(f"{kernel}: merged entry names unknown device {entry['device']!r}")
        elif (entry["device"], entry["point"]) not in front_points:
            errors.append(
                f"{kernel}: merged entry {entry['device']}/{entry['point']} "
                f"is not on that device's own front"
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: assert the acceptance bar and exit non-zero on failure")
    parser.add_argument("--output", default=None, help="write the JSON payload here")
    args = parser.parse_args(argv)

    payloads = [run_kernel(name) for name in SMOKE_KERNELS]
    errors = []
    for payload in payloads:
        errors.extend(check_kernel(payload))
        sizes = {d: len(f["pareto"]) for d, f in payload["per_device"].items()}
        merged_devices = sorted({e["device"] for e in payload["merged"]})
        print(
            f"{payload['kernel']:12s} fronts {sizes} "
            f"merged {len(payload['merged'])} (devices {merged_devices}) "
            f"in {payload['seconds']}s"
        )

    # Bit-reproducibility: a fresh second run must reproduce everything.
    rerun = [run_kernel(name) for name in SMOKE_KERNELS]
    for first, second in zip(payloads, rerun):
        first.pop("seconds"), second.pop("seconds")
        if json.dumps(first, sort_keys=True) != json.dumps(second, sort_keys=True):
            errors.append(f"{first['kernel']}: rerun did not reproduce the payload")
    if not errors:
        print("rerun: bit-identical")

    if args.output:
        with open(args.output, "w") as handle:
            json.dump({"kernels": payloads, "errors": errors}, handle, indent=1)
            handle.write("\n")
        print(f"wrote {args.output}")

    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
