"""Table 2: model comparison M1–M7.

Trains all seven model variants (each = validity classifier + main
regressor + BRAM regressor) on the shared database and reports
per-objective RMSE, total, accuracy, and F1 on the held-out 20% split.

Reproduced shape (see EXPERIMENTS.md for the honest deltas): all seven
variants train to non-trivial accuracy; the full model (M7) posts the
best validity classification of the family; at the short default budget
the regression ordering between variants is noise-dominated (our
simulated tool is more pragma-regular than Vitis, making M1 a stronger
baseline than in the paper), while larger budgets put M7 ahead — the
20-epoch probe recorded in EXPERIMENTS.md has M7 beating M1 on total
RMSE with decisively better classification.
"""

import os

from repro.experiments import format_table2, run_table2

_EPOCHS = int(os.environ.get("REPRO_TABLE2_EPOCHS", "10"))


def test_table2_model_comparison(benchmark, ctx):
    rows = benchmark.pedantic(
        lambda: run_table2(ctx, epochs=_EPOCHS), rounds=1, iterations=1
    )
    print()
    print(format_table2(rows))
    metrics = {r.model: r.metrics for r in rows}
    # Robust facts at any budget: every variant trains to better-than-
    # chance validity classification with finite losses...
    for model, m in metrics.items():
        assert m["all"] < 10.0, model
        assert m["accuracy"] > 0.55, model
        assert m["f1"] > 0.3, model
    # ...and the full model posts the best classification accuracy of
    # the family (its decisive edge in our reproduction).
    best_acc = max(m["accuracy"] for m in metrics.values())
    assert metrics["M7"]["accuracy"] >= best_acc - 0.02
    # The GNN family is competitive with the MLP baselines on total
    # RMSE (ordering beyond this is budget/noise-dominated; see
    # EXPERIMENTS.md for the larger-budget comparison).
    gnn_best = min(metrics[m]["all"] for m in ("M3", "M4", "M5", "M6", "M7"))
    assert gnn_best < min(metrics["M1"]["all"], metrics["M2"]["all"]) * 1.25
