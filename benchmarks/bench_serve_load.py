"""Open-loop load test for the multi-worker serving stack.

Drives a :class:`~repro.serve.pool.WorkerPool` with open-loop traffic —
request arrival times are pre-scheduled from a seeded Poisson process
(plus periodic burst windows at a rate multiplier) and fired on
schedule regardless of how the server is coping, so the measurements
do not suffer coordinated omission: a slow server faces a growing
backlog exactly as it would in production, and every latency sample is
measured from the *scheduled* arrival.

Reported per run, from ``repro.obs`` histogram windows:

- p50/p99/p999 latency of successful responses;
- goodput (200s inside their deadline, per second of wall time);
- shed rate (429 + ``Retry-After``: admission control at work);
- 5xx / transport-error counts (must be zero — overload is never an
  internal error).

Modes
-----
``--smoke`` (CI, seconds): 2 workers, a fixed burst profile, then a
fleet-wide hot-swap and a rolling restart both *under load*.  Asserts
zero 5xx, zero dropped in-flight requests, bounded p99, bit-identical
predictions across workers, and that every response's model ``sha256``
matches a published artifact during the swap.

Default (scaling, ~a minute): the same fixed burst profile against
1/2/4 workers with a modeled per-dispatch overhead
(``dispatch_overhead_seconds``, standing in for accelerator inference
latency — this container has one core, so real compute cannot scale),
asserting ≥2.5x goodput at 4 workers vs 1.
"""

import argparse
import json
import os
import random
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

try:
    import repro  # noqa: F401
except ImportError:  # standalone run from a source checkout, no install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.designspace import build_design_space
from repro.errors import ServeError
from repro.explorer.database import Database
from repro.graph.encoding import EDGE_DIM, NODE_DIM
from repro.kernels import get_kernel
from repro.model.config import BRAM_OBJECTIVE, MODEL_CONFIGS, REGRESSION_OBJECTIVES
from repro.model.dataset import GraphDatasetBuilder
from repro.model.models import build_model
from repro.model.predictor import GNNDSEPredictor
from repro.obs import Histogram
from repro.serve import ModelRegistry, PredictorService, ServeClient, WorkerPool
from repro.serve.client import ServeClientError
from repro.serve.registry import load_artifact
from repro.serve.schemas import point_payload

KERNEL = "spmv-ellpack"

#: The fixed burst profile every mode (and EXPERIMENTS.md) refers to:
#: a Poisson base rate with windows at BURST_FACTOR× every BURST_EVERY
#: seconds, BURST_LEN seconds long.
BURST_EVERY = 2.0
BURST_LEN = 0.6
BURST_FACTOR = 3.0


def make_predictor(seed=0):
    """Untrained-but-deterministic predictor stack (mirrors the tests)."""
    builder = GraphDatasetBuilder(Database())
    config = MODEL_CONFIGS["M7"]
    classifier = build_model(
        config.for_task("classification"), NODE_DIM, EDGE_DIM, seed=seed
    )
    regressor = build_model(
        config.for_task("regression", REGRESSION_OBJECTIVES),
        NODE_DIM, EDGE_DIM, seed=seed + 1,
    )
    bram = build_model(
        config.for_task("regression", BRAM_OBJECTIVE), NODE_DIM, EDGE_DIM,
        seed=seed + 2,
    )
    return GNNDSEPredictor(classifier, regressor, bram, builder.normalizer, builder)


def make_factory(registry_root, batch_size=8, max_delay=0.004, max_pending=64,
                 overhead=0.0):
    """Service factory run inside each forked worker (registry-backed)."""

    def factory():
        registry = ModelRegistry(registry_root)
        current = registry.current()
        predictor = load_artifact(current.path)
        return PredictorService(
            predictor,
            batch_size=batch_size,
            max_delay_seconds=max_delay,
            max_pending=max_pending,
            model_info=current.payload(),
            registry=registry,
            dispatch_overhead_seconds=overhead,
        )

    return factory


def poisson_schedule(rng, rate, duration,
                     burst_every=BURST_EVERY, burst_len=BURST_LEN,
                     burst_factor=BURST_FACTOR):
    """Arrival offsets (seconds) for the fixed burst profile."""
    t, out = 0.0, []
    while True:
        in_burst = burst_every > 0 and (t % burst_every) < burst_len
        t += rng.expovariate(rate * (burst_factor if in_burst else 1.0))
        if t >= duration:
            return out
        out.append(t)


class LoadStats:
    """Thread-safe tally of one load run."""

    def __init__(self, deadline_ms):
        self.deadline_ms = deadline_ms
        self.lock = threading.Lock()
        self.latency = Histogram("bench.serve.load.latency", window=1 << 17)
        self.attempted = 0
        self.ok = 0
        self.in_deadline = 0
        self.shed = 0
        self.client_errors = 0
        self.server_errors = 0
        self.transport_errors = 0
        self.model_shas = {}  # sha256 -> set of prediction fingerprints

    def record_response(self, latency_seconds, payload):
        fingerprint = json.dumps(payload["predictions"], sort_keys=True)
        sha = (payload.get("model") or {}).get("sha256")
        self.latency.observe(latency_seconds)
        with self.lock:
            self.ok += 1
            if latency_seconds * 1000.0 <= self.deadline_ms:
                self.in_deadline += 1
            self.model_shas.setdefault(sha, set()).add(fingerprint)

    def record_error(self, status):
        with self.lock:
            if status == 429:
                self.shed += 1
            elif status >= 500:
                self.server_errors += 1
            else:
                self.client_errors += 1

    def record_transport_error(self):
        with self.lock:
            self.transport_errors += 1

    def report(self, label, wall_seconds):
        snap = self.latency.snapshot()
        # Goodput counts every 200: deadline-aware scheduling already
        # sheds (429) any request the server could not start inside its
        # budget, so a success is by construction useful work.  The
        # in-deadline count additionally subtracts client-side latency
        # the server cannot observe.
        goodput = self.ok / wall_seconds if wall_seconds > 0 else 0.0
        print(
            f"bench-serve-load: [{label}] attempted={self.attempted} "
            f"ok={self.ok} in-deadline={self.in_deadline} shed={self.shed} "
            f"5xx={self.server_errors} transport-err={self.transport_errors}"
        )
        print(
            f"bench-serve-load: [{label}] latency "
            f"p50={snap['p50'] * 1000:.1f}ms p99={snap['p99'] * 1000:.1f}ms "
            f"p999={snap['p999'] * 1000:.1f}ms max={snap['max'] * 1000:.1f}ms "
            f"goodput={goodput:.1f}/s"
        )
        return {"goodput": goodput, **snap}


def run_load(url, point, schedule, deadline_ms, retries=0, concurrency=256):
    """Fire the schedule open-loop; returns (stats, wall_seconds)."""
    stats = LoadStats(deadline_ms)
    client = ServeClient(
        url, connect_timeout=5.0, read_timeout=15.0, retries=retries
    )
    payload = {
        "kernel": KERNEL,
        "point": point_payload(point),
        "deadline_ms": deadline_ms,
    }

    def fire(scheduled_at):
        try:
            response = client._request("POST", "/v1/predict", payload)
            stats.record_response(time.perf_counter() - scheduled_at, response)
        except ServeClientError as exc:
            stats.record_error(exc.status)
        except ServeError:
            stats.record_transport_error()

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        for offset in schedule:
            delay = start + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            stats.attempted += 1
            pool.submit(fire, start + offset)
    wall = time.perf_counter() - start
    return stats, wall


def fail(message):
    print(f"bench-serve-load: FAIL: {message}")
    raise SystemExit(1)


def check_clean(stats, label, expected_shas=None):
    """Invariants every phase must uphold (the zero-5xx contract)."""
    if stats.server_errors:
        fail(f"[{label}] {stats.server_errors} 5xx responses (want 0)")
    if stats.transport_errors:
        fail(f"[{label}] {stats.transport_errors} transport errors — "
             "a request was dropped mid-flight (want 0)")
    if stats.client_errors:
        fail(f"[{label}] {stats.client_errors} unexpected 4xx responses")
    if stats.ok == 0:
        fail(f"[{label}] no request succeeded")
    for sha, fingerprints in stats.model_shas.items():
        if len(fingerprints) > 1:
            fail(f"[{label}] model {sha} returned {len(fingerprints)} distinct "
                 "predictions for one point — workers are not bit-identical")
    if expected_shas is not None:
        stray = set(stats.model_shas) - set(expected_shas)
        if stray:
            fail(f"[{label}] responses carried unpublished model shas: {stray}")


def write_report(args, phases):
    """Dump per-phase latency/goodput JSON for CI artifact upload."""
    if not getattr(args, "output", None):
        return
    with open(args.output, "w") as handle:
        json.dump({"seed": args.seed, "phases": phases}, handle, indent=1)
        handle.write("\n")
    print(f"bench-serve-load: wrote {args.output}")


def smoke(args):
    """CI profile: bursts, fleet hot-swap under load, rolling restart."""
    root = tempfile.mkdtemp(prefix="bench-serve-load-registry-")
    registry = ModelRegistry(root)
    v1 = registry.publish(make_predictor(seed=0))
    v2 = registry.publish(make_predictor(seed=100), activate=False)
    point = build_design_space(get_kernel(KERNEL)).default_point()
    rng = random.Random(args.seed)
    deadline_ms = 2000.0

    factory = make_factory(root, max_pending=256)
    with WorkerPool(factory, workers=2) as pool:
        print(f"bench-serve-load: smoke pool up at {pool.url} (2 workers)")
        control = ServeClient(pool.url, timeout=10.0, retries=3)

        # Phase 1: steady + burst traffic against a healthy fleet.
        stats, wall = run_load(
            pool.url, point, poisson_schedule(rng, rate=50.0, duration=4.0),
            deadline_ms,
        )
        snap = stats.report("bursts", wall)
        phases = {"bursts": snap}
        check_clean(stats, "bursts", expected_shas={v1.sha256})
        if snap["p99"] > 5.0:
            fail(f"p99 {snap['p99']:.3f}s exceeds the 5s smoke bound")

        # Phase 2: hot-swap the whole fleet while the generator runs.
        schedule = poisson_schedule(rng, rate=40.0, duration=5.0)
        result = {}

        def swap_mid_load():
            time.sleep(1.0)
            registry.set_current(v2.version)
            result["reload"] = control.reload_model()

        swapper = threading.Thread(target=swap_mid_load)
        swapper.start()
        stats, wall = run_load(pool.url, point, schedule, deadline_ms)
        swapper.join()
        phases["hot-swap"] = stats.report("hot-swap", wall)
        check_clean(stats, "hot-swap", expected_shas={v1.sha256, v2.sha256})
        if not result.get("reload", {}).get("swapped"):
            fail(f"reload did not swap: {result!r}")
        if v2.sha256 not in stats.model_shas:
            fail("no response was served by the new artifact during the swap")
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if all(
                control.model()["model"]["sha256"] == v2.sha256
                for _ in range(2 * pool.worker_count())
            ):
                break
            time.sleep(0.2)
        else:
            fail("fleet did not converge on the new artifact after reload")
        print("bench-serve-load: fleet converged on "
              f"{v2.version} ({v2.sha256[:12]}…)")

        # Phase 3: rolling restart under load — zero dropped requests.
        schedule = poisson_schedule(rng, rate=40.0, duration=6.0)
        restart_error = []

        def restart_mid_load():
            time.sleep(1.0)
            try:
                pool.rolling_restart()
            except Exception as exc:  # surfaced after the load run
                restart_error.append(exc)

        restarter = threading.Thread(target=restart_mid_load)
        restarter.start()
        stats, wall = run_load(pool.url, point, schedule, deadline_ms)
        restarter.join()
        phases["rolling-restart"] = stats.report("rolling-restart", wall)
        if restart_error:
            fail(f"rolling restart raised: {restart_error[0]}")
        check_clean(stats, "rolling-restart", expected_shas={v2.sha256})
        if pool.worker_count() != 2:
            fail(f"pool has {pool.worker_count()} workers after restart (want 2)")
    write_report(args, phases)
    print("bench-serve-load: PASS")


def scaling(args):
    """Goodput at 1/2/4 workers under the fixed burst profile.

    ``dispatch_overhead_seconds`` models per-batch accelerator latency;
    workers overlap those waits, so goodput scales with pool size even
    on a single core (same technique as ``bench_parallel_dse.py``).
    """
    root = tempfile.mkdtemp(prefix="bench-serve-load-registry-")
    ModelRegistry(root).publish(make_predictor(seed=0))
    point = build_design_space(get_kernel(KERNEL)).default_point()
    results = {}
    for workers in args.worker_counts:
        factory = make_factory(root, overhead=args.overhead_ms / 1000.0)
        rng = random.Random(args.seed)  # identical schedule per pool size
        schedule = poisson_schedule(rng, rate=args.rate, duration=args.duration)
        with WorkerPool(factory, workers=workers) as pool:
            print(f"bench-serve-load: pool up at {pool.url} "
                  f"({workers} workers, {args.overhead_ms:g}ms modeled "
                  f"dispatch overhead)")
            stats, wall = run_load(
                pool.url, point, schedule, args.deadline_ms
            )
        label = f"{workers}w"
        results[workers] = stats.report(label, wall)
        check_clean(stats, label)
    if 1 in results and 4 in results:
        ratio = results[4]["goodput"] / max(results[1]["goodput"], 1e-9)
        print(f"bench-serve-load: goodput 4w/1w = {ratio:.2f}x")
        if ratio < 2.5:
            fail(f"goodput ratio {ratio:.2f}x below the 2.5x floor")
    write_report(args, {f"{w}w": report for w, report in results.items()})
    print("bench-serve-load: PASS")


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short CI profile: bursts + hot-swap + rolling "
                             "restart under load, with hard assertions")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated pool sizes for the scaling run")
    parser.add_argument("--rate", type=float, default=110.0,
                        help="base Poisson arrival rate (requests/s); the "
                             "burst windows multiply it")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds of scheduled traffic per scaling run")
    parser.add_argument("--deadline-ms", type=float, default=750.0,
                        help="per-request latency budget in the scaling runs")
    parser.add_argument("--overhead-ms", type=float, default=150.0,
                        help="modeled per-batch dispatch overhead")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", metavar="FILE",
                        help="write per-phase latency/goodput stats as JSON")
    args = parser.parse_args()
    args.worker_counts = [int(w) for w in str(args.workers).split(",") if w]
    if args.smoke:
        smoke(args)
    else:
        scaling(args)


if __name__ == "__main__":
    main()
