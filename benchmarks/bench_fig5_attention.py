"""Fig. 5: node-attention scores on a stencil design.

The paper's claim: with the node-attention readout (model M7), pragma
nodes are among the most attended nodes, and not all pragma nodes are
equally important (loop trip-count context modulates them).
"""

from repro.experiments import format_fig5, run_fig5


def test_fig5_pragma_nodes_attended(benchmark, ctx, predictor):
    report = benchmark.pedantic(
        lambda: run_fig5(ctx, kernel="stencil", predictor=predictor),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig5(report))
    by_type = report.mean_score_by_type()
    uniform = 1.0 / len(report.nodes)
    # Pragma nodes receive above-uniform attention on average...
    assert by_type["pragma"] > uniform
    # ...and more than the generic variable nodes.
    assert by_type["pragma"] > by_type["variable"]
    # Not all pragma nodes are equal: their scores are not constant.
    pragma_scores = [n.score for n in report.nodes if n.ntype == "pragma"]
    assert max(pragma_scores) > 1.5 * min(pragma_scores)
