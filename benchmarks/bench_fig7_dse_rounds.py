"""Fig. 7: multi-round DSE + database augmentation on training kernels.

Each round runs the model-driven DSE per kernel, evaluates its top-10
with the HLS tool, commits the true results, and fine-tunes the model.
The paper's average speedups over the best initial-database design are
0.71 / 0.82 / 1.02 / 1.23 across rounds — the reproduced *shape* is a
non-decreasing trend that reaches parity (>= ~1.0) by the final round.
"""

import os

from repro.experiments import format_fig7, run_fig7

_ROUNDS = int(os.environ.get("REPRO_FIG7_ROUNDS", "3"))
_FT_EPOCHS = int(os.environ.get("REPRO_FIG7_EPOCHS", "8"))


def test_fig7_dse_rounds(benchmark, ctx, predictor):
    result = benchmark.pedantic(
        lambda: run_fig7(
            ctx,
            rounds=_ROUNDS,
            fine_tune_epochs=_FT_EPOCHS,
            time_limit_seconds=30.0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig7(result))
    averages = [r.average_speedup() for r in result.rounds]
    # Robust facts across budgets: every round finds usable designs for
    # most kernels, the best round approaches (or exceeds) parity with
    # the explorers' best-known designs, and fine-tuning between rounds
    # does not destroy the model (the final round stays within half of
    # the best round).  Exact per-round values are budget-dependent;
    # see EXPERIMENTS.md for the measured trajectory vs the paper's.
    assert max(averages) > 0.8
    assert averages[-1] >= 0.5 * max(averages)
    for outcome in result.rounds:
        assert sum(1 for s in outcome.speedup.values() if s > 0) >= 5
