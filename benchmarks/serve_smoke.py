"""End-to-end smoke test of the model-serving stack (``make serve-smoke``).

Boots the HTTP server on an ephemeral port with an untrained predictor
(no database or training needed, finishes in seconds), then checks the
whole request path from the outside:

- ``/healthz`` reports ``ok``;
- ``/v1/predict`` answers are **bit-identical** to the in-process
  :class:`~repro.dse.pipeline.EvaluationPipeline` on the same weights;
- ``/v1/dse/top`` returns a well-formed ranked payload;
- ``/metrics`` accounts for every request we sent.

Exits non-zero on any mismatch, so it can gate CI.
"""

import os
import random
import sys

try:
    import repro  # noqa: F401
except ImportError:  # standalone run from a source checkout, no install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.designspace import build_design_space
from repro.dse import EvaluationPipeline
from repro.explorer.database import Database
from repro.graph.encoding import EDGE_DIM, NODE_DIM
from repro.kernels import get_kernel
from repro.model.config import BRAM_OBJECTIVE, MODEL_CONFIGS, REGRESSION_OBJECTIVES
from repro.model.dataset import GraphDatasetBuilder
from repro.model.models import build_model
from repro.model.predictor import GNNDSEPredictor
from repro.serve import PredictorService, ServeClient, start_server

KERNEL = "spmv-ellpack"
POINTS = 12


def make_predictor(seed=0):
    """Untrained-but-deterministic predictor stack (mirrors the tests)."""
    builder = GraphDatasetBuilder(Database())
    config = MODEL_CONFIGS["M7"]
    classifier = build_model(
        config.for_task("classification"), NODE_DIM, EDGE_DIM, seed=seed
    )
    regressor = build_model(
        config.for_task("regression", REGRESSION_OBJECTIVES),
        NODE_DIM, EDGE_DIM, seed=seed + 1,
    )
    bram = build_model(
        config.for_task("regression", BRAM_OBJECTIVE), NODE_DIM, EDGE_DIM,
        seed=seed + 2,
    )
    return GNNDSEPredictor(classifier, regressor, bram, builder.normalizer, builder)


def fail(message):
    print(f"serve-smoke: FAIL: {message}")
    raise SystemExit(1)


def main():
    predictor = make_predictor()
    space = build_design_space(get_kernel(KERNEL))
    points = space.sample(random.Random(1), POINTS)

    # Ground truth from the in-process pipeline on the same weights.
    expected = EvaluationPipeline(predictor, batch_size=4).predict_batch(
        KERNEL, points
    )

    service = PredictorService(predictor, batch_size=4, max_delay_seconds=0.002)
    server = start_server(service)  # ephemeral port
    print(f"serve-smoke: server up at {server.url}")
    try:
        client = ServeClient(server.url)

        health = client.healthz()
        if health.get("status") != "ok":
            fail(f"/healthz reported {health!r}")

        served = client.predict(KERNEL, points)
        if served != expected:
            fail("/v1/predict is not bit-identical to the in-process pipeline")
        print(f"serve-smoke: {len(served)} predictions bit-identical")

        result = client.dse_top(KERNEL, top=3, time_limit=3.0)
        ranks = [entry["rank"] for entry in result["top"]]
        if result["kernel"] != KERNEL or ranks != list(range(1, len(ranks) + 1)):
            fail(f"/v1/dse/top payload malformed: {result!r}")
        print(
            f"serve-smoke: dse/top returned {len(ranks)} designs, "
            f"{result['explored']} points explored"
        )

        metrics = client.metrics()
        predict_count = metrics["latency"]["/v1/predict"]["count"]
        if predict_count < 1 or metrics["batches"] < 1:
            fail(f"/metrics did not account for our requests: {metrics!r}")
        print(
            f"serve-smoke: metrics ok ({predict_count} predict requests, "
            f"{metrics['batches']} batches, "
            f"mean fill {metrics['mean_batch_fill']:.2f})"
        )
    finally:
        server.stop()
    print("serve-smoke: PASS")


if __name__ == "__main__":
    main()
