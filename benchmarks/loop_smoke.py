"""End-to-end smoke test of the active-learning loop (``make loop-smoke``).

Runs two tiny rounds of :class:`~repro.loop.active.ActiveLoop` against
the deterministic estimator oracle while a **live** model server —
booted from the same registry — answers a background stream of predict
requests.  Checks the whole closed loop from the outside:

- the loop publishes a new artifact version per round (baseline + 2);
- the loop hot-swaps the live server after each publish, and the
  server answers under BOTH the baseline and the final model version;
- zero requests fail across the swaps (no 5xx, nothing dropped);
- every model hash the server reported names a verifiable registry
  version.

Finishes in well under a minute on untrained weights; exits non-zero
on any violation, so it can gate CI.
"""

import os
import sys
import tempfile
import threading
import time

try:
    import repro  # noqa: F401
except ImportError:  # standalone run from a source checkout, no install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from serve_smoke import make_predictor

from repro.designspace import build_design_space
from repro.explorer.database import Database
from repro.kernels import get_kernel
from repro.loop import ActiveLoop, LoopConfig
from repro.serve import ModelRegistry, PredictorService, ServeClient, start_server
from repro.serve.registry import load_artifact, verify_artifact

KERNEL = "gesummv"


def fail(message):
    print(f"loop-smoke: FAIL: {message}")
    raise SystemExit(1)


def main():
    import random

    with tempfile.TemporaryDirectory(prefix="loop-smoke-") as tmp:
        registry = ModelRegistry(os.path.join(tmp, "registry"))
        baseline = registry.publish(make_predictor(seed=0), created=0.0)
        print(f"loop-smoke: baseline {baseline.version} ({baseline.sha256[:12]}…)")

        service = PredictorService(
            load_artifact(baseline.path),
            batch_size=4,
            max_delay_seconds=0.002,
            model_info=baseline.payload(),
            registry=registry,
        )
        server = start_server(service)  # ephemeral port
        print(f"loop-smoke: server up at {server.url}")

        client = ServeClient(server.url)
        space = build_design_space(get_kernel(KERNEL))
        points = space.sample(random.Random(7), 6)

        seen_shas, errors = set(), []
        done = threading.Event()
        lock = threading.Lock()

        def ask(point):
            _, info = client.predict_with_model(KERNEL, [point])
            with lock:
                seen_shas.add(info["sha256"])

        def load():
            i = 0
            while not done.is_set():
                try:
                    ask(points[i % len(points)])
                except Exception as exc:  # noqa: BLE001 - the assertion
                    with lock:
                        errors.append(repr(exc))
                    return
                i += 1
                time.sleep(0.01)

        # Pin the baseline version in the observed set, then keep a
        # background request stream running across both hot swaps.
        ask(points[0])
        worker = threading.Thread(target=load)
        worker.start()
        try:
            loop = ActiveLoop(
                load_artifact(baseline.path),
                Database(),
                registry,
                LoopConfig(
                    kernels=(KERNEL,),
                    rounds=2,
                    label_budget=5,
                    scan=40,
                    eval_points=24,
                    epochs=1,
                    gate_on_holdout=False,
                ),
                os.path.join(tmp, "loop-database.json"),
                os.path.join(tmp, "loop-state.json"),
                serve_url=server.url,
                log=lambda msg: print(f"loop-smoke: {msg}"),
            )
            result = loop.run()
            # One guaranteed post-swap request before stopping the load.
            ask(points[0])
        finally:
            done.set()
            worker.join()
            server.stop()

        if errors:
            fail(f"{len(errors)} request(s) failed across the swaps: {errors[:3]}")
        print(f"loop-smoke: zero failed requests, {len(seen_shas)} versions observed")

        versions = registry.versions()
        if len(versions) != 1 + len(result.rounds):
            fail(
                f"expected {1 + len(result.rounds)} artifact versions "
                f"(baseline + one per round), found {len(versions)}"
            )
        final = registry.current()
        if final.version == baseline.version:
            fail("loop did not advance the registry's current pointer")
        print(
            f"loop-smoke: registry advanced {baseline.version} -> {final.version} "
            f"over {len(result.rounds)} rounds"
        )

        if not {baseline.sha256, final.sha256} <= seen_shas:
            fail(
                "server did not answer under both the baseline and the "
                f"final model (saw {sorted(s[:12] for s in seen_shas)})"
            )
        known = {v.sha256 for v in versions}
        if not seen_shas <= known:
            fail(f"server reported model hashes not in the registry: {seen_shas - known}")
        for version in versions:
            verify_artifact(version.path)
        print(f"loop-smoke: all {len(versions)} artifact versions verify")

        trajectory = " -> ".join(f"{r:.4f}" for r in result.rmse_trajectory())
        print(f"loop-smoke: held-out RMSE {trajectory}")
    print("loop-smoke: PASS")


if __name__ == "__main__":
    main()
