"""Table 1: design-space and database statistics (9 training kernels).

Regenerates the per-kernel pragma counts, design-space sizes, and the
initial database total/valid counts produced by the three explorers of
Section 4.1.  The paper's totals: 3,095,613 configs; initial DB
4,428/1,036; our scaled database reproduces the same shape (large
per-kernel spread, minority of valid designs).
"""

from repro.experiments import format_table1, run_table1


def test_table1_database_stats(benchmark, ctx):
    rows = benchmark.pedantic(lambda: run_table1(ctx), rounds=1, iterations=1)
    print()
    print(format_table1(rows))
    # Shape assertions: pragma counts match the paper exactly.
    by_kernel = {r.kernel: r for r in rows}
    assert by_kernel["aes"].num_pragmas == 3
    assert by_kernel["2mm" if "2mm" in by_kernel else "mvt"].num_pragmas in (8, 14)
    assert by_kernel["mvt"].design_configs > 100_000  # the huge space
    total_valid = sum(r.initial_valid for r in rows)
    total = sum(r.initial_total for r in rows)
    assert 0.05 < total_valid / total < 0.75  # valid designs are a minority
