"""Micro-benchmarks of the pipeline stages.

These quantify the claim structure of the paper: graph construction and
pragma-fill are cheap (done once per kernel / per design point), model
inference is milliseconds, and even our *simulated* HLS evaluator —
standing in for the minutes-to-hours real tool — runs fast enough to
generate thousands-of-designs databases.
"""

import random

import pytest

from repro.designspace import build_design_space
from repro.frontend.pragmas import PipelineOption
from repro.graph import encode_kernel
from repro.hls import MerlinHLSTool
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def gemm():
    return get_kernel("gemm-ncubed")


def test_frontend_to_graph_encoding(benchmark):
    """Full front-end → IR → ProGraML graph → features, one kernel."""

    def pipeline():
        spec = get_kernel("gemm-ncubed")
        spec.invalidate()
        return encode_kernel(spec)

    enc = benchmark(pipeline)
    assert enc.num_nodes > 50


def test_pragma_fill(benchmark, gemm):
    """Per-design-point feature refresh (hot loop of dataset building)."""
    enc = encode_kernel(gemm)
    point = {"__PIPE__L0": PipelineOption.COARSE, "__PARA__L1": 8, "__TILE__L0": 2}
    x = benchmark(enc.fill, point)
    assert x.shape == enc.x_base.shape


def test_hls_synthesize(benchmark, gemm):
    """One simulated Merlin+HLS evaluation (uncached)."""
    space = build_design_space(gemm)
    rng = random.Random(0)
    points = space.sample(rng, 512)
    counter = {"i": 0}

    def synth():
        tool = MerlinHLSTool(cache=False)
        counter["i"] = (counter["i"] + 1) % len(points)
        return tool.synthesize(gemm, points[counter["i"]])

    result = benchmark(synth)
    assert result.latency > 0


def test_design_space_enumeration(benchmark):
    """Pruned enumeration of a mid-size space (atax, ~4.5k points)."""
    spec = get_kernel("atax")
    space = build_design_space(spec)

    count = benchmark(lambda: sum(1 for _ in space.enumerate()))
    assert count > 1000
